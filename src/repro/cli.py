"""Command-line interface: run the paper's workloads without pytest.

    python -m repro compare                 # the three-kernel summary
    python -m repro rpc --kernel soda --payload 1024 --count 10
    python -m repro sweep                   # the E4 crossover sweep
    python -m repro figure2                 # live figure-2 chart
    python -m repro migrate --kernel soda --hops 8 --loss 0.5
    python -m repro sizes                   # the E2 code-size table
    python -m repro bench                   # E1..E16/S1 -> BENCH_*.json
    python -m repro trace --kernel soda --by-layer --critical-path
    python -m repro chaos                   # fault injection + recovery
    python -m repro lint                    # determinism/layering checks
    python -m repro flight --demo           # black-box dump + inspector
    python -m repro top                     # per-window chaos telemetry
    python -m repro net serve --socket S    # real-transport node process
    python -m repro net load S --clients N  # wall-clock load generator

Intended for exploration; the authoritative experiment harness (with
assertions and saved tables) is ``pytest benchmarks/ --benchmark-only``.
``bench`` is the exception: it is the canonical producer of the
machine-readable ``BENCH_*.json`` regression baseline (see
docs/OBSERVABILITY.md).
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.analysis.complexity import (
    charlotte_special_case_stats,
    runtime_package_stats,
)
from repro.analysis.report import Table
from repro.core.api import (
    kernel_profile,
    kernel_profiles,
    registered_kernels,
    registered_sim_backends,
)
from repro.obs import compare as compare_mod
from repro.obs.bench import BENCH_IDS


def _default_kernel(command: str) -> str:
    """The backend whose profile claims ``command`` (first registered
    wins; the paper's own pairings: figure2/trace → charlotte,
    migrate/linda → soda, rpc → chrysalis)."""
    for profile in kernel_profiles():
        if command in profile.cli_default_for:
            return profile.name
    return registered_kernels()[0]


def _cmd_rpc(args) -> int:
    from repro.workloads.rpc import run_rpc_workload

    r = run_rpc_workload(
        args.kernel, payload_bytes=args.payload, count=args.count,
        seed=args.seed,
    )
    t = Table(
        f"simple remote operation on {args.kernel}",
        ["payload B each way", "ops", "mean ms", "min ms", "max ms",
         "wire msgs"],
    )
    t.add(args.payload, len(r.rtts), r.mean_ms, min(r.rtts), max(r.rtts),
          r.messages)
    t.show()
    return 0


def _cmd_compare(args) -> int:
    from repro.workloads.rpc import run_rpc_workload

    t = Table(
        "one LYNX program, every registered kernel",
        ["kernel", "rpc 0B ms", "rpc 1000B ms", "runtime loc",
         "runtime branches"],
    )
    for kind in registered_kernels():
        r0 = run_rpc_workload(kind, 0, count=args.count, seed=args.seed)
        r1 = run_rpc_workload(kind, 1000, count=args.count, seed=args.seed)
        stats = runtime_package_stats(kind)
        t.add(kind, r0.mean_ms, r1.mean_ms, stats.kernel_specific_loc,
              stats.kernel_specific_branches)
    t.show()
    return 0


def _cmd_sweep(args) -> int:
    from repro.workloads.rpc import run_rpc_workload

    t = Table(
        "Charlotte vs SODA latency sweep (§4.3 fn. 2)",
        ["payload B each way", "charlotte ms", "soda ms", "winner"],
    )
    for nbytes in (0, 256, 512, 1024, 1536, 2048, 3072, 4096):
        c = run_rpc_workload("charlotte", nbytes, count=3, seed=args.seed)
        s = run_rpc_workload("soda", nbytes, count=3, seed=args.seed)
        t.add(nbytes, c.mean_ms, s.mean_ms,
              "soda" if s.mean_ms < c.mean_ms else "charlotte")
    t.show()
    return 0


def _cmd_figure2(args) -> int:
    from repro.core.api import LINK, Operation, Proc, make_cluster

    n = args.enclosures
    GIVE = Operation(f"give{n}", tuple([LINK] * n), ())

    class Giver(Proc):
        def main(self, ctx):
            (to_taker,) = ctx.initial_links
            ends = []
            for _ in range(n):
                mine, theirs = yield from ctx.new_link()
                ends.append(theirs)
            yield from ctx.connect(to_taker, GIVE, tuple(ends))

    class Taker(Proc):
        def main(self, ctx):
            (from_giver,) = ctx.initial_links
            yield from ctx.register(GIVE)
            yield from ctx.open(from_giver)
            inc = yield from ctx.wait_request()
            yield from ctx.reply(inc, ())

    cluster = make_cluster(args.kernel, seed=args.seed)
    a = cluster.spawn(Giver(), "connector")
    b = cluster.spawn(Taker(), "accepter")
    cluster.create_link(a, b)
    cluster.run_until_quiet()
    events = set(kernel_profile(args.kernel).trace_events)
    print(cluster.trace.sequence_chart(
        ["connector", "accepter"], events=events, link=1, width=34
    ))
    return 0


def _cmd_migrate(args) -> int:
    from repro.workloads.migration import run_dormant_migration

    profile = kernel_profile(args.kernel)
    extras = {kwarg: getattr(args, attr)
              for attr, kwarg in profile.cli_migrate_extras.items()}
    d = run_dormant_migration(
        args.kernel, members=args.members, hops=args.hops, seed=args.seed,
        **extras,
    )
    t = Table(
        f"dormant-link migration on {args.kernel} "
        f"({args.hops} hops, then one use)",
        ["quantity", "value"],
    )
    for key in ("served_by", "repair_latency_ms", "redirects_served",
                "discovers", "discover_repairs", "freeze_searches",
                "frozen_ms", "move_msgs", "wire_messages"):
        # capability-conditional keys are *absent* (not None) on
        # kernels whose digest does not produce them
        t.add(key, d[key] if key in d else "(n/a)")
    t.show()
    return 0


def _cmd_linda(args) -> int:
    from repro.linda import ANY, make_linda

    system = make_linda(args.kernel, seed=args.seed)
    results = []

    def master(c):
        for i in range(args.tasks):
            yield from c.out(("task", i))
        for _ in range(args.tasks):
            results.append((yield from c.take(("result", ANY, ANY))))
        for _ in range(args.workers):
            yield from c.out(("task", -1))
        yield from c.close()

    def worker(c):
        while True:
            _, n = yield from c.take(("task", ANY))
            if n < 0:
                break
            yield from c.out(("result", n, n * n))
        yield from c.close()

    system.spawn(master(system.client("master")), "master")
    for i in range(args.workers):
        system.spawn(worker(system.client(f"w{i}")), f"w{i}")
    system.run_until_quiet()
    t = Table(
        f"mini-Linda bag of tasks on {args.kernel} "
        f"({args.tasks} tasks, {args.workers} workers)",
        ["quantity", "value"],
    )
    t.add("results collected", len(results))
    t.add("takes that blocked",
          system.metrics.get("linda.blocked_waiters"))
    t.add("simulated ms", system.engine.now)
    t.show()
    return 0


def _cmd_bench(args) -> int:
    from repro.obs.bench import run_benches, write_bench_json

    if args.compare is not None:
        return _bench_compare(args)
    try:
        results = run_benches(bench_ids=args.only, seed=args.seed,
                              quick=args.quick,
                              sim_backend=args.sim_backend)
    except ValueError as exc:
        print(f"repro bench: {exc}", file=sys.stderr)
        return 2
    doc, path = write_bench_json(results, path=args.out, seed=args.seed,
                                 quick=args.quick)
    if path == "-":
        return 0  # the JSON document *is* the stdout output
    t = Table(
        f"benchmark export (seed={args.seed}"
        f"{', quick' if args.quick else ''})",
        ["bench", "metric", "value"],
    )
    for bid, metrics in results.items():
        for metric, value in metrics.items():
            t.add(bid, metric, value)
    t.show()
    print(f"wrote {path} (git_rev={doc['git_rev']})")
    return 0


def _bench_compare(args) -> int:
    """``bench --compare OLD NEW``: diff two BENCH_*.json documents and
    gate on regression (exit 1).  Does not run any benchmark."""
    import json as _json

    from repro.obs.compare import CompareError, compare_files, render_report

    old_path, new_path = args.compare
    try:
        report = compare_files(
            old_path, new_path,
            threshold=args.threshold,
            wall_threshold=args.wall_threshold,
        )
    except CompareError as exc:
        print(f"repro bench --compare: {exc}", file=sys.stderr)
        return 2
    if args.json is not None:
        payload = _json.dumps(report, indent=2, sort_keys=True)
        if args.json == "-":
            print(payload)
        else:
            with open(args.json, "w") as fh:
                fh.write(payload + "\n")
    if args.json != "-":
        print(render_report(report))
    return 1 if report["status"] == "regression" else 0


def _trace_graph(args):
    """The (CausalGraph, descriptive label) for the trace command."""
    from repro.obs.causal import CausalGraph

    if args.jsonl:
        from repro.sim.trace import TraceLog

        with open(args.jsonl) as fh:
            log = TraceLog.from_jsonl(fh)
        return CausalGraph.from_trace(log), args.jsonl
    from repro.workloads.rpc import run_rpc_workload

    r = run_rpc_workload(args.kernel, payload_bytes=args.payload,
                         count=args.count, seed=args.seed)
    label = (f"{args.kernel} rpc payload={args.payload} "
             f"count={args.count} seed={args.seed}")
    return CausalGraph.from_trace(r.trace), label


def _cmd_trace(args) -> int:
    from repro.obs.causal import chrome_trace_json, waterfall

    if args.selftest:
        return _trace_selftest()
    graph, label = _trace_graph(args)
    tids = graph.traces()
    if not tids:
        print("repro trace: no spans in this trace", file=sys.stderr)
        return 2
    if args.chrome:
        payload = chrome_trace_json(graph)
        if args.chrome == "-":
            print(payload)
        else:
            with open(args.chrome, "w") as fh:
                fh.write(payload + "\n")
            print(f"wrote {args.chrome} ({len(tids)} traces)")
    if args.critical_path:
        print(waterfall(graph, tids[-1]))
        print()
        t = Table(
            f"critical path of trace {tids[-1]} ({label})",
            ["t0 ms", "t1 ms", "layer", "segment", "host"],
        )
        for seg in graph.critical_path(tids[-1]):
            t.add(seg.t0, seg.t1, seg.layer, seg.name, seg.host)
        t.show()
    if args.by_layer or not (args.chrome or args.critical_path):
        per = graph.by_layer(tids)
        total = graph.total_ms(tids)
        t = Table(
            f"critical-path latency by layer ({label}; "
            f"{len(tids)} traces incl. warm-up)",
            ["layer", "total ms", "ms per rpc", "share"],
        )
        for layer, ms in sorted(per.items(), key=lambda kv: -kv[1]):
            t.add(layer, ms, ms / len(tids),
                  ms / total if total else 0.0)
        t.add("(total)", total, total / len(tids), 1.0)
        t.show()
    return 0


def _trace_selftest() -> int:
    """Smoke-check the whole causal pipeline on every registered kernel."""
    import json as _json

    from repro.obs.causal import CausalGraph, chrome_trace_json, waterfall
    from repro.workloads.rpc import run_rpc_workload

    failures = []
    for kind in registered_kernels():
        r = run_rpc_workload(kind, 64, count=3, seed=0)
        graph = CausalGraph.from_trace(r.trace)
        tids = graph.traces()
        if len(tids) != 4:  # 3 measured + 1 warm-up
            failures.append(f"{kind}: expected 4 traces, got {len(tids)}")
            continue
        for tid in tids:
            if not graph.is_tree(tid):
                failures.append(f"{kind}: trace {tid} is not a tree")
            segs = graph.critical_path(tid)
            root = graph.root(tid)
            covered = sum(s.duration for s in segs)
            if abs(covered - root.duration) > 1e-9:
                failures.append(
                    f"{kind}: trace {tid} critical path covers "
                    f"{covered} != rtt {root.duration}"
                )
        _json.loads(chrome_trace_json(graph))
        waterfall(graph, tids[-1])
        print(f"trace selftest: {kind} ok "
              f"({len(graph.spans)} spans, {len(tids)} traces)")
    if failures:
        for f in failures:
            print(f"trace selftest FAILED: {f}", file=sys.stderr)
        return 1
    print("trace selftest: all kernels ok")
    return 0


def _cmd_chaos(args) -> int:
    from repro.workloads.chaos import (
        chaos_policy,
        lossy_plan,
        partitioned_plan,
        run_chaos_workload,
    )

    if args.scenario == "lossy":
        plan = lossy_plan(drop=args.drop, dup=args.dup)
        label = f"lossy drop={args.drop} dup={args.dup}"
    else:
        plan = partitioned_plan(quick=args.quick)
        label = "partition client<->primary"
    kinds = [args.kernel] if args.kernel else registered_kernels()
    t = Table(
        f"fault recovery under {label} "
        f"(count={args.count}, seed={args.seed})",
        ["kernel", "recovery", "clean op/s", "faulted op/s", "retention",
         "max rtt ms", "failovers", "retries", "kernel rexmit"],
    )
    for kind in kinds:
        clean = run_chaos_workload(kind, count=args.count, seed=args.seed)
        faulted = run_chaos_workload(
            kind, count=args.count, seed=args.seed,
            plan=plan, policy=chaos_policy(),
        )
        placement = kernel_profile(kind).capabilities.recovery_placement
        retention = (faulted.goodput_per_s / clean.goodput_per_s
                     if clean.goodput_per_s else 0.0)
        t.add(kind, placement, clean.goodput_per_s, faulted.goodput_per_s,
              retention, faulted.max_rtt_ms, faulted.failed_over,
              faulted.counters.get("recovery.retries", 0),
              faulted.counters.get("faults.kernel_retransmits", 0))
    t.show()
    return 0


def _reject_sim_backend(kernel: Optional[str],
                        sim_backend: Optional[str]) -> bool:
    """True (message printed) when an explicit ``--sim-backend`` is
    combined with a real-transport backend — the knob selects a
    *simulation* engine, and the real backend's network is the OS."""
    if sim_backend is None or kernel is None:
        return False
    if not kernel_profile(kernel).real_transport:
        return False
    print(
        f"repro: --sim-backend {sim_backend!r} does not apply to "
        f"{kernel!r}: the real-transport backend runs on real OS "
        "sockets, not a simulation engine (drop --sim-backend)",
        file=sys.stderr,
    )
    return True


def _cmd_flight(args) -> int:
    from repro.obs.flight import describe_flight_dump

    paths = list(args.dumps)
    if args.demo:
        from repro.workloads.chaos import (
            chaos_policy,
            partitioned_plan,
            run_chaos_workload,
        )

        if _reject_sim_backend(args.kernel, args.sim_backend):
            return 2
        recorders = []
        run_chaos_workload(
            args.kernel, count=12, seed=args.seed,
            plan=partitioned_plan(quick=True), policy=chaos_policy(),
            sim_backend=args.sim_backend or "global",
            instrument=lambda cluster: recorders.append(
                cluster.install_flight_recorder(args.out)
            ),
        )
        demo_dumps = recorders[0].dumps
        if not demo_dumps:
            print("repro flight: demo run produced no dumps",
                  file=sys.stderr)
            return 2
        for path in demo_dumps:
            print(f"wrote {path}")
        paths.extend(str(p) for p in demo_dumps)
    if not paths:
        print("repro flight: no dumps given (pass DUMP paths or --demo)",
              file=sys.stderr)
        return 2
    for i, path in enumerate(paths):
        if i:
            print()
        try:
            print(describe_flight_dump(path, tail=args.tail))
        except (OSError, ValueError) as exc:
            print(f"repro flight: {exc}", file=sys.stderr)
            return 2
    return 0


def _top_scale(args) -> int:
    """`top --scenario scale`: per-window telemetry of the E16 sharded
    workload.  Every shard keeps its own windowed `TimeSeries`; the
    merged series (`TimeSeries.merged`) is what gets rendered — not
    shard 0's slice."""
    from repro.workloads.scale import run_scale

    backend = args.sim_backend or "global"
    r = run_scale(
        backend, args.shards, clients=args.clients,
        requests=2, seed=args.seed, window_ms=args.window,
    )
    ts = r.timeseries
    if ts is None:  # pragma: no cover - run_scale always builds series
        print("repro top: scale run produced no time-series",
              file=sys.stderr)
        return 2
    t = Table(
        f"per-window scale telemetry on {backend} "
        f"(shards={args.shards}, clients={args.clients}, "
        f"window={args.window:g} ms, seed={args.seed})",
        ["t0 ms", "completed", "goodput/s", "mean rtt ms", "max rtt ms",
         "remote", "dropped", "retries", "moves"],
    )
    for w in ts.windows():
        t0, _ = ts.window_span(w)
        rtt = ts.get(w, "scale.rtt")
        t.add(
            t0,
            ts.value(w, "scale.completed"),
            ts.rate_per_sec(w, "scale.completed"),
            rtt.mean if rtt else 0.0,
            rtt.maximum if rtt else 0.0,
            ts.value(w, "scale.remote"),
            ts.value(w, "scale.dropped"),
            ts.value(w, "scale.retries"),
            ts.value(w, "scale.moves"),
        )
    t.show()
    print(f"{r.events} events across {r.shards} shard(s); "
          f"digest {r.digest[:16]}")
    return 0


def _cmd_top(args) -> int:
    from repro.workloads.chaos import (
        chaos_policy,
        lossy_plan,
        partitioned_plan,
        run_chaos_workload,
    )

    if args.scenario == "scale":
        return _top_scale(args)
    if _reject_sim_backend(args.kernel, args.sim_backend):
        return 2
    if args.scenario == "lossy":
        plan = lossy_plan()
        label = "lossy"
    elif args.scenario == "clean":
        plan = None
        label = "clean"
    else:
        plan = partitioned_plan(quick=args.quick)
        label = "partition client<->primary"
    series = []
    run_chaos_workload(
        args.kernel, count=args.count, seed=args.seed,
        plan=plan, policy=chaos_policy() if plan is not None else None,
        sim_backend=args.sim_backend or "global",
        instrument=lambda cluster: series.append(
            cluster.install_timeseries(args.window)
        ),
    )
    ts = series[0]
    t = Table(
        f"per-window telemetry on {args.kernel} under {label} "
        f"(window={args.window:g} ms, count={args.count}, seed={args.seed})",
        ["t0 ms", "ok ops", "goodput/s", "mean rtt ms", "max rtt ms",
         "fault drops", "retries", "failovers"],
    )
    for w in ts.windows():
        t0, _ = ts.window_span(w)
        rtt = ts.get(w, "rpc.roundtrip")
        t.add(
            t0,
            rtt.count if rtt else 0,
            (rtt.count * 1000.0 / args.window) if rtt else 0.0,
            rtt.mean if rtt else 0.0,
            rtt.maximum if rtt else 0.0,
            ts.value(w, "faults.partition_dropped")
            + ts.value(w, "faults.dropped"),
            ts.value(w, "recovery.retries"),
            ts.value(w, "recovery.failovers"),
        )
    t.show()
    return 0


def _cmd_lint(args) -> int:
    import json as _json

    from repro.analysis.lint import (
        LintPathError,
        lint_json_doc,
        render_text,
        run_lint,
        write_baseline,
    )
    from repro.analysis.lint.baseline import BaselineError
    from repro.analysis.lint.runner import lint_repo_root

    try:
        result = run_lint(paths=args.paths or None,
                          baseline_path=args.baseline,
                          deep=args.deep)
    except (LintPathError, BaselineError) as exc:
        print(f"repro lint: {exc}", file=sys.stderr)
        return 2
    if args.fix_baseline:
        from repro.analysis.lint.baseline import (
            DEFAULT_BASELINE_NAME,
            load_baseline,
        )

        path = args.baseline or str(lint_repo_root() / DEFAULT_BASELINE_NAME)
        keep = {(e.rule, e.path): e.note for e in load_baseline(path)}
        doc = write_baseline(path, result.findings, keep=keep)
        print(f"wrote {path} "
              f"({len(doc['entries'])} grandfathered finding(s))")
        # the baseline may only shrink: entries whose finding no longer
        # fires are pruned from the file above, and their presence is an
        # error — a fixed finding must take its grandfather clause with
        # it, not leave a rule-shaped hole for regressions to hide in
        current = {(e["rule"], e["path"]) for e in doc["entries"]}
        orphaned = sorted(k for k in keep if k not in current)
        for rule_id, rel_path in orphaned:
            print(f"pruned orphaned baseline entry: {rule_id} at "
                  f"{rel_path} (finding no longer fires)")
        return 1 if orphaned else 0
    if args.json is not None:
        payload = _json.dumps(lint_json_doc(result), indent=2,
                              sort_keys=True)
        if args.json == "-":
            print(payload)
        else:
            with open(args.json, "w") as fh:
                fh.write(payload + "\n")
            print(f"wrote {args.json}")
    else:
        print(render_text(result))
    return result.exit_code


def _cmd_net_serve(args) -> int:
    from repro.net.server import serve_forever

    if (args.socket is None) == (args.tcp is None):
        print("repro net serve: give exactly one of --socket PATH or "
              "--tcp PORT", file=sys.stderr)
        return 2
    serve_forever(args.name, socket_path=args.socket, port=args.tcp,
                  drop_first=args.drop_first)
    return 0


def _cmd_net_load(args) -> int:
    from repro.core.recovery import RecoveryPolicy
    from repro.net.load import run_load

    policy = RecoveryPolicy(
        timeout_ms=args.timeout_ms, max_retries=args.retries,
        backoff_factor=2.0, jitter_frac=0.0,
    )
    r = run_load(args.endpoints, clients=args.clients,
                 requests=args.requests, payload_bytes=args.payload,
                 policy=policy)
    t = Table(
        f"real-transport load: {args.clients} clients x "
        f"{args.requests} requests",
        ["quantity", "value"],
    )
    t.add("issued", r.issued)
    t.add("completed", r.completed)
    t.add("exhausted", r.exhausted)
    t.add("retries", r.retries)
    t.add("failovers", r.failovers)
    t.add("wall s", r.wall_s)
    t.add("throughput /s", r.throughput_per_s)
    t.add("rtt mean ms", r.rtt.mean)
    t.add("rtt p99 ms", r.rtt.percentile(99.0))
    t.show()
    if not r.exactly_once:
        print("repro net load: accounting broke exactly-once "
              f"(completed {r.completed} + exhausted {r.exhausted} "
              f"!= issued {r.issued})", file=sys.stderr)
        return 1
    return 0


def _cmd_sizes(args) -> int:
    t = Table(
        "LYNX runtime package sizes (kernel-specific half)",
        ["kernel", "logical loc", "branches"],
    )
    for kind in registered_kernels():
        stats = runtime_package_stats(kind)
        t.add(kind, stats.kernel_specific_loc,
              stats.kernel_specific_branches)
    special = charlotte_special_case_stats()
    t.add("charlotte special cases", special.logical_loc, special.branches)
    t.show()
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="LYNX / Charlotte / SODA / Chrysalis reproduction "
        "(Scott, ICPP 1986)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("rpc", help="run the simple-remote-operation workload")
    p.add_argument("--kernel", choices=registered_kernels(),
                   default=_default_kernel("rpc"))
    p.add_argument("--payload", type=int, default=0,
                   help="bytes each way (paper used 0 and 1000)")
    p.add_argument("--count", type=int, default=10)
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(fn=_cmd_rpc)

    p = sub.add_parser("compare", help="three-kernel summary table")
    p.add_argument("--count", type=int, default=5)
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(fn=_cmd_compare)

    p = sub.add_parser("sweep", help="Charlotte-vs-SODA payload sweep (E4)")
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(fn=_cmd_sweep)

    p = sub.add_parser("figure2", help="live message-sequence chart")
    p.add_argument("--kernel", choices=registered_kernels(),
                   default=_default_kernel("figure2"))
    p.add_argument("--enclosures", type=int, default=3)
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(fn=_cmd_figure2)

    p = sub.add_parser("migrate", help="dormant-link migration + repair")
    p.add_argument("--kernel", choices=registered_kernels(),
                   default=_default_kernel("migrate"))
    p.add_argument("--members", type=int, default=3)
    p.add_argument("--hops", type=int, default=5)
    p.add_argument("--loss", type=float, default=0.0,
                   help="SODA broadcast loss probability")
    p.add_argument("--cache", type=int, default=64,
                   help="SODA moved-link cache size")
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(fn=_cmd_migrate)

    p = sub.add_parser("linda", help="the second language: bag of tasks")
    p.add_argument("--kernel", choices=registered_kernels(),
                   default=_default_kernel("linda"))
    p.add_argument("--tasks", type=int, default=8)
    p.add_argument("--workers", type=int, default=3)
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(fn=_cmd_linda)

    p = sub.add_parser(
        "chaos",
        help="fault injection + recovery: clean vs faulted goodput (E14)",
    )
    p.add_argument("--kernel", choices=registered_kernels(), default=None,
                   help="one backend (default: all registered kernels)")
    p.add_argument("--scenario", choices=("partition", "lossy"),
                   default="partition")
    p.add_argument("--drop", type=float, default=0.2,
                   help="per-message drop probability (lossy scenario)")
    p.add_argument("--dup", type=float, default=0.1,
                   help="per-message duplication probability (lossy)")
    p.add_argument("--count", type=int, default=30)
    p.add_argument("--quick", action="store_true",
                   help="the short partition window / smoke counts")
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(fn=_cmd_chaos)

    p = sub.add_parser("sizes", help="runtime package complexity (E2)")
    p.set_defaults(fn=_cmd_sizes)

    p = sub.add_parser(
        "bench",
        help="run the E1/E4/E5/E13/E14/E15/E16/E17/S1 workloads and "
             "write BENCH_*.json",
    )
    p.add_argument("--quick", action="store_true",
                   help="smoke-test iteration counts (same schema)")
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--out", default=None,
                   help="output path (default: BENCH_PR9.json at the "
                        "repo root; '-' writes the JSON to stdout)")
    p.add_argument("--sim-backend", default=None, metavar="NAME",
                   help="pin backend-aware benches (E16/S1) to one "
                        "repro.sim.backends engine instead of sweeping "
                        "all of them (unknown names exit 2)")
    p.add_argument("--only", nargs="+", metavar="BENCH", type=str.upper,
                   help=f"subset of {' '.join(BENCH_IDS)} "
                        "(unknown names exit 2)")
    p.add_argument("--compare", nargs=2, metavar=("OLD", "NEW"),
                   default=None,
                   help="diff two BENCH_*.json documents instead of "
                        "running benchmarks; exits 1 on regression "
                        "(docs/PERFORMANCE.md)")
    p.add_argument("--threshold", type=float,
                   default=compare_mod.DEFAULT_THRESHOLD,
                   help="fractional regression gate for simulated "
                        "metrics (default %(default)s)")
    p.add_argument("--wall-threshold", type=float,
                   default=compare_mod.DEFAULT_WALL_THRESHOLD,
                   help="gate for wall-clock (machine-dependent) "
                        "metrics (default %(default)s)")
    p.add_argument("--json", default=None, metavar="OUT",
                   help="with --compare: write the repro.bench-compare "
                        "report JSON ('-' for stdout)")
    p.set_defaults(fn=_cmd_bench)

    p = sub.add_parser(
        "lint",
        help="determinism & layering static analysis (docs/LINT.md)",
    )
    p.add_argument("paths", nargs="*", metavar="PATH",
                   help="files or directories to lint (default: "
                        "src/repro; nonexistent paths exit 2)")
    p.add_argument("--deep", action="store_true",
                   help="also link the tree into a whole-program graph "
                        "and run the interprocedural rules "
                        "(repro.analysis.flow: SHARD001/SIM003/NET001/"
                        "API002)")
    p.add_argument("--json", default=None, metavar="OUT",
                   help="write the repro.lint JSON report "
                        "('-' for stdout)")
    p.add_argument("--baseline", default=None, metavar="FILE",
                   help="baseline file (default: LINT_BASELINE.json "
                        "at the repo root)")
    p.add_argument("--fix-baseline", action="store_true",
                   help="rewrite the baseline from current findings; "
                        "prunes entries whose finding no longer fires "
                        "and exits non-zero when any were orphaned")
    p.set_defaults(fn=_cmd_lint)

    p = sub.add_parser(
        "flight",
        help="inspect flight-recorder black-box dumps (repro.obs.flight)",
    )
    p.add_argument("dumps", nargs="*", metavar="DUMP",
                   help="flight dump JSONL files to inspect")
    p.add_argument("--demo", action="store_true",
                   help="run a quick partitioned chaos workload with a "
                        "flight recorder attached and inspect its dumps")
    p.add_argument("--kernel", choices=registered_kernels(),
                   default=_default_kernel("chaos"),
                   help="backend for --demo")
    p.add_argument("--sim-backend", choices=registered_sim_backends(),
                   default=None,
                   help="simulation engine for --demo (default: global; "
                        "rejected for real-transport kernels)")
    p.add_argument("--out", default="flight", metavar="DIR",
                   help="--demo dump directory (default: ./flight)")
    p.add_argument("--tail", type=int, default=20,
                   help="trailing events to show per dump")
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(fn=_cmd_flight)

    p = sub.add_parser(
        "top",
        help="per-window goodput/latency/fault report over simulated "
             "time (repro.obs.timeseries)",
    )
    p.add_argument("--kernel", choices=registered_kernels(),
                   default=_default_kernel("chaos"))
    p.add_argument("--scenario",
                   choices=("partition", "lossy", "clean", "scale"),
                   default="partition")
    p.add_argument("--sim-backend", choices=registered_sim_backends(),
                   default=None,
                   help="simulation engine (default: global; rejected "
                        "for real-transport kernels); with --scenario "
                        "scale the per-shard series are merged before "
                        "rendering")
    p.add_argument("--shards", type=int, default=4,
                   help="shard count for --scenario scale")
    p.add_argument("--clients", type=int, default=2000,
                   help="client population for --scenario scale")
    p.add_argument("--window", type=float, default=100.0,
                   help="window width in simulated ms")
    p.add_argument("--count", type=int, default=30)
    p.add_argument("--quick", action="store_true",
                   help="the short partition window / smoke counts")
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(fn=_cmd_top)

    p = sub.add_parser(
        "net",
        help="real-transport processes: node server + wall-clock load "
             "generator (repro.net)",
    )
    netsub = p.add_subparsers(dest="net_command", required=True)

    s = netsub.add_parser(
        "serve", help="run one node server process (prints "
                      "'REPRO-NET READY <endpoint>' when bound)",
    )
    s.add_argument("--name", default="node",
                   help="node name reported in __stats__")
    s.add_argument("--socket", default=None, metavar="PATH",
                   help="serve on this Unix-domain socket path")
    s.add_argument("--tcp", type=int, default=None, metavar="PORT",
                   help="serve on 127.0.0.1:PORT (0 = ephemeral)")
    s.add_argument("--drop-first", type=int, default=0, metavar="N",
                   help="execute but withhold the reply for the first N "
                        "distinct requests (forces client retries; the "
                        "retransmit must hit the dedup cache)")
    s.set_defaults(fn=_cmd_net_serve)

    ld = netsub.add_parser(
        "load", help="drive concurrent client coroutines at node "
                     "servers with wall-clock timeout/retry/failover",
    )
    ld.add_argument("endpoints", nargs="+", metavar="ENDPOINT",
                    help="server addresses (UDS path or host:port), "
                         "in failover order")
    ld.add_argument("--clients", type=int, default=8)
    ld.add_argument("--requests", type=int, default=4,
                    help="requests per client")
    ld.add_argument("--payload", type=int, default=32)
    ld.add_argument("--timeout-ms", type=float, default=1000.0,
                    help="recovery-policy first-attempt timeout")
    ld.add_argument("--retries", type=int, default=3,
                    help="recovery-policy retransmissions per address")
    ld.set_defaults(fn=_cmd_net_load)

    p = sub.add_parser(
        "trace",
        help="causal span tracing: critical-path latency attribution",
    )
    p.add_argument("--kernel", choices=registered_kernels(),
                   default=_default_kernel("trace"))
    p.add_argument("--payload", type=int, default=0,
                   help="bytes each way for the traced RPC workload")
    p.add_argument("--count", type=int, default=5)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--jsonl", default=None, metavar="FILE",
                   help="analyse a saved TraceLog JSONL instead of "
                        "running the RPC workload")
    p.add_argument("--chrome", default=None, metavar="OUT",
                   help="write Chrome trace-event JSON (Perfetto / "
                        "chrome://tracing; '-' for stdout)")
    p.add_argument("--critical-path", action="store_true",
                   help="print the waterfall + critical path of the "
                        "last trace")
    p.add_argument("--by-layer", action="store_true",
                   help="print the per-layer attribution table "
                        "(default when no other output is selected)")
    p.add_argument("--selftest", action="store_true",
                   help="smoke-check span trees, critical-path "
                        "coverage and the Chrome export on all kernels")
    p.set_defaults(fn=_cmd_trace)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    return args.fn(args)


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
