"""repro — reproduction of M. L. Scott, "The Interface Between
Distributed Operating System and High-Level Programming Language"
(ICPP 1986 / Butterfly Project Report 6).

The package implements the LYNX distributed programming language's
run-time semantics three times, over from-scratch simulations of the
three kernels the paper studied — Charlotte, SODA and Chrysalis — plus
the measurement harness that regenerates the paper's tables and
figures.  Start with `repro.core.api`.
"""

__version__ = "1.0.0"

from repro.core.api import make_cluster  # noqa: F401  (public root export)
