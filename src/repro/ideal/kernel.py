"""The ideal kernel: per-end mailboxes and an owner table.

There is no protocol to model.  A message "on the wire" is one entry
in the destination end's mailbox; delivery is a pointer move charged
at `IdealCosts.delivery_ms`.  Receipt of a request is confirmed when
the owner *consumes* it (`IdealRuntime.rt_take_request`), so withdrawn
requests — and their enclosures — are always recoverable; replies are
handed to the requester synchronously at send time.

The kernel knows nothing about the LYNX runtime beyond the upcall half
of `repro.core.ports.KernelRuntimePort`.
"""

from __future__ import annotations

from collections import deque
from typing import Deque, Dict, Set, TYPE_CHECKING

from repro.core.links import EndRef
from repro.core.wire import WireMessage

if TYPE_CHECKING:  # pragma: no cover
    from repro.ideal.runtime import IdealRuntime


class IdealKernel:
    """Owner routes, mailboxes, and the shared abort/destroy tables."""

    def __init__(self, registry, metrics) -> None:
        self.registry = registry
        self.metrics = metrics
        #: owning runtime of each registered end
        self.route: Dict[EndRef, "IdealRuntime"] = {}
        #: unconsumed messages, keyed by the *destination* end (the
        #: key survives moves: the adopter inherits the mailbox)
        self.mailbox: Dict[EndRef, Deque[WireMessage]] = {}
        #: destroyed links and why
        self.destroyed: Dict[int, str] = {}
        #: consumed-then-aborted request seqs, keyed by requester end
        self.aborted: Dict[EndRef, Set[int]] = {}

    def owner(self, ref: EndRef):
        return self.route.get(ref)

    def box(self, ref: EndRef) -> Deque[WireMessage]:
        return self.mailbox.setdefault(ref, deque())

    def is_destroyed(self, ref: EndRef) -> bool:
        return ref.link in self.destroyed

    def post(self, dest: EndRef, msg: WireMessage) -> None:
        """Queue ``msg`` for ``dest`` and wake its owner."""
        self.box(dest).append(msg)
        self.metrics.count(f"wire.messages.{msg.kind.value}")
        self.metrics.count("wire.bytes", msg.wire_size)
        self.metrics.count("ideal.handoffs")
        owner = self.route.get(dest)
        if owner is not None:
            owner._wake()

    def deliver(self, dest: EndRef, msg: WireMessage) -> None:
        """Hand a reply straight to the requester's runtime (replies
        are always wanted, §3.2.1 — no mailbox stop)."""
        self.metrics.count(f"wire.messages.{msg.kind.value}")
        self.metrics.count("wire.bytes", msg.wire_size)
        self.metrics.count("ideal.handoffs")
        owner = self.route.get(dest)
        if owner is not None:
            owner.deliver_reply(dest, msg)

    def withdraw(self, dest: EndRef, seq: int) -> bool:
        """Remove an unconsumed request before its receipt, if possible."""
        box = self.mailbox.get(dest)
        if box:
            for msg in list(box):
                if msg.seq == seq:
                    box.remove(msg)
                    self.metrics.count("ideal.withdrawals")
                    return True
        return False

    def destroy_link(self, ref: EndRef, reason: str) -> None:
        """Mark the link of ``ref`` dead and unwind both mailboxes:
        unconsumed messages were never received, so their senders get
        bounces (enclosures come home), then the surviving peer is told
        the link is gone."""
        if ref.link in self.destroyed:
            return
        self.destroyed[ref.link] = reason
        peer = ref.peer
        # messages TO ``ref`` were sent by the peer and never received
        for msg in self.mailbox.pop(ref, ()):
            sender = self.route.get(peer)
            if sender is not None:
                sender.notify_bounce(peer, msg.seq)
        # messages FROM ``ref`` sitting unconsumed at the peer
        owner = self.route.get(ref)
        for msg in self.mailbox.pop(peer, ()):
            if owner is not None:
                owner.notify_bounce(ref, msg.seq)
        self.aborted.pop(ref, None)
        self.aborted.pop(peer, None)
        peer_rt = self.route.get(peer)
        if peer_rt is not None:
            peer_rt.notify_destroyed(peer, reason, crash="crash" in reason)
        self.route.pop(ref, None)

    def process_crashed(self, runtime, reason: str) -> None:
        """A processor failed: every link routed to ``runtime`` dies.
        The dead side ran no cleanup, so the kernel does it: bounces
        for the peers' unreceived messages, loss records for the dead
        side's in-transit enclosures, crash notices all around."""
        dead = [ref for ref, rt in self.route.items() if rt is runtime]
        # unroute first so no upcall lands in the dead process
        for ref in dead:
            self.route.pop(ref, None)
        for ref in dead:
            if ref.link in self.destroyed:
                continue
            # enclosures the dead process had in transit are gone
            for msg in self.mailbox.get(ref.peer, ()):
                for enc in msg.enclosures:
                    self.registry.record_lost(enc)
            self.destroy_link(ref, reason)
            self.registry.record_destroyed(ref.link, reason)
