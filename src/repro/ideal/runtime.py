"""The LYNX runtime for the ideal backend.

Every `rt_*` hook is the shortest correct implementation of the
published port contract (`repro.core.ports.KernelRuntimePort`):

* requests go straight into the peer end's mailbox (one charged
  handoff, `IdealCosts.delivery_ms`);
* receipt is confirmed when the owner consumes a request, so an
  aborted connect always recovers its enclosures if the server has
  not taken it yet;
* replies are screened against the shared aborted-seq table — the
  server *feels* aborts, like SODA and Chrysalis and unlike
  Charlotte — and delivered synchronously to the requester.

There is no naming, no flow control, no retry machinery and no
resend policy: the divergence-shaped complexity of the three real
runtimes is exactly what this file does not contain (E2 counts it).
"""

from __future__ import annotations

from typing import Generator, Optional

from repro.core.exceptions import RequestAborted
from repro.core.links import ConnectWaiter, EndRef, EndState
from repro.core.runtime import LynxRuntimeBase
from repro.core.wire import WireMessage
from repro.sim.tasks import sleep


class IdealRuntime(LynxRuntimeBase):
    """Mailbox transport; see module docstring."""

    RUNTIME_NAME = "ideal"

    def __init__(self, handle, cluster) -> None:
        super().__init__(handle, cluster)
        self.costs = cluster.costmodel.ideal
        self.kernel = cluster.kernel

    def runtime_costs(self):
        return self.cluster.costmodel.ideal.runtime

    # ------------------------------------------------------------------
    # transport hooks
    # ------------------------------------------------------------------
    def rt_new_link(self) -> Generator:
        link = self.registry.alloc_link(self.name, self.name)
        ref_a, ref_b = EndRef(link, 0), EndRef(link, 1)
        self.kernel.route[ref_a] = self
        self.kernel.route[ref_b] = self
        return ref_a, ref_b
        yield

    def _handoff(self, msg: WireMessage) -> Generator:
        """Charge the one cost of the ideal transport and span it."""
        t0 = self.engine.now
        yield sleep(self.engine, self.costs.delivery_ms)
        if msg.span is not None:
            self.cluster.spans.emit(
                msg.span, "kernel", "handoff", self.name, t0, self.engine.now
            )

    def rt_send_request(self, es: EndState, msg: WireMessage) -> Generator:
        if self.kernel.is_destroyed(es.ref):
            raise self.destroyed_error(self.kernel.destroyed[es.ref.link])
        yield from self._handoff(msg)
        self.kernel.post(es.ref.peer, msg)

    def rt_send_reply(self, es: EndState, msg: WireMessage) -> Generator:
        requester = es.ref.peer
        if self.kernel.is_destroyed(es.ref):
            raise self.destroyed_error(self.kernel.destroyed[es.ref.link])
        aborted = self.kernel.aborted.get(requester)
        if aborted and msg.reply_to in aborted:
            aborted.discard(msg.reply_to)
            raise RequestAborted(
                f"requester aborted seq {msg.reply_to} on {es.ref}"
            )
        yield from self._handoff(msg)
        self.kernel.deliver(requester, msg)
        # delivery is the receipt: unblock the replying coroutine now
        self.notify_receipt(es.ref, msg.seq)

    def rt_block_wait(self) -> Generator:
        yield self.wakeup_future()

    def rt_request_available(self, es: EndState) -> bool:
        return bool(self.kernel.mailbox.get(es.ref))

    def rt_take_request(self, es: EndState) -> Generator:
        box = self.kernel.mailbox.get(es.ref)
        if not box:
            return None
        msg = box.popleft()
        # receipt-at-consumption: unconsumed requests stay withdrawable
        sender = self.kernel.owner(es.ref.peer)
        if sender is not None:
            sender.notify_receipt(es.ref.peer, msg.seq)
        return msg
        yield

    def rt_destroy(self, es: EndState, reason: str) -> Generator:
        why = self.crash_tagged(reason)
        # our unconsumed sends: the base already cleared ``outgoing``,
        # so bring their enclosures home directly before the kernel
        # drops the mailboxes
        for msg in self.kernel.mailbox.get(es.ref.peer, ()):
            self._restore_enclosures(msg)
        self.kernel.destroy_link(es.ref, why)
        return
        yield

    def rt_abort_connect(self, es: EndState, waiter: ConnectWaiter) -> Generator:
        if self.kernel.withdraw(es.ref.peer, waiter.seq):
            return True
        # consumed already: flag the seq so the reply raises on the
        # server side (the ideal kernel shares SODA's capability here)
        self.kernel.aborted.setdefault(es.ref, set()).add(waiter.seq)
        return False
        yield

    def rt_adopt_end(self, ref: EndRef, meta: dict) -> Generator:
        self.kernel.route[ref] = self
        reason: Optional[str] = self.kernel.destroyed.get(ref.link)
        if reason is not None:
            self.notify_destroyed(ref, reason, crash="crash" in reason)
        elif self.kernel.mailbox.get(ref):
            self._wake()
        return
        yield
