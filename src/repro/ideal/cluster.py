"""The ideal cluster: one shared in-memory kernel, no interconnect."""

from __future__ import annotations

from repro.core.cluster import ClusterBase, ProcessHandle
from repro.core.links import EndRef
from repro.ideal.kernel import IdealKernel
from repro.ideal.runtime import IdealRuntime
from repro.sim.failure import CrashMode


class IdealCluster(ClusterBase):
    """A cluster whose kernel is a dictionary.

    The entire transport is `IdealKernel`'s route and mailbox tables;
    there is no network model, so the only delivery cost is the token
    `IdealCosts.delivery_ms` charged by the runtime.  Everything else —
    spawn, links, crash injection, metrics, tracing — is the shared
    `ClusterBase` machinery, which is the point: the backend exercises
    the port, not a private protocol.
    """

    KIND = "ideal"

    def _setup_hardware(self) -> None:
        self.kernel = IdealKernel(self.registry, self.metrics)

    def make_runtime(self, handle: ProcessHandle) -> IdealRuntime:
        return IdealRuntime(handle, self)

    def create_link(self, a: ProcessHandle, b: ProcessHandle) -> None:
        link = self.registry.alloc_link(a.name, b.name)
        ref_a, ref_b = EndRef(link, 0), EndRef(link, 1)
        a.runtime.preload_end(ref_a)
        b.runtime.preload_end(ref_b)
        self.kernel.route[ref_a] = a.runtime
        self.kernel.route[ref_b] = b.runtime

    def on_crash(self, handle: ProcessHandle, mode: CrashMode) -> None:
        # a processor failure runs no process-side cleanup; the kernel
        # (which survives) unwinds the dead process's links itself
        if mode is CrashMode.PROCESSOR:
            self.kernel.process_crashed(
                handle.runtime, f"crash: processor of {handle.name} failed"
            )
