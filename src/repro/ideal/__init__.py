"""The ``ideal`` reference backend: a zero-protocol-overhead in-memory
kernel written only against the published kernel/runtime port
(`repro.core.ports.KernelRuntimePort`).

It exists for two reasons:

* to prove the port contract is *sufficient* — a fourth backend passes
  the full LYNX conformance suite without touching core, CLI, bench or
  test code (they all iterate the registry);
* to serve as the lower-bound baseline in the latency benches (E1,
  E13): "simple primitives are best", taken to the limit — no wire, no
  flow control, no naming, just mailboxes and direct upcalls.

It is deliberately not a model of any 1986 system, so it is excluded
from the paper-shaped tables (``paper=False`` in its profile).

Failure semantics (docs/FAULTS.md): like the real minimal kernels it
declares ``recovery_placement="runtime"`` — under an installed
`FaultPlan` a dropped message is lost and the `RecoveryPolicy` owns
recovery.  This keeps the backend honest as a lower bound: its speed
comes from zero protocol overhead, not from a free reliability
absolute the others must pay for.
"""

from repro.ideal.cluster import IdealCluster

__all__ = ["IdealCluster"]
