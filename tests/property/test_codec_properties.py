"""Property-based tests for the marshalling layer.

The codec is the one component every message crosses twice; these
properties (roundtrip identity, enclosure ordering, size monotonicity)
hold for *arbitrary* well-typed values, not just the examples the unit
tests pick.
"""

from hypothesis import given, settings, strategies as st

from repro.core import codec
from repro.core.links import EndRef, LinkEnd
from repro.core.types import (
    ArrayType,
    BOOL,
    BYTES,
    INT,
    LINK,
    REAL,
    RecordType,
    STR,
)

# ---------------------------------------------------------------------
# strategies: a type together with a value inhabiting it
# ---------------------------------------------------------------------
_scalars = st.sampled_from(["int", "real", "bool", "str", "bytes", "link"])


def _value_for(tag, draw_value):
    return draw_value


@st.composite
def typed_value(draw, depth=2):
    """Draw (LynxType, value) pairs, recursively for containers."""
    if depth <= 0:
        kind = draw(_scalars)
    else:
        kind = draw(
            st.sampled_from(
                ["int", "real", "bool", "str", "bytes", "link",
                 "array", "record"]
            )
        )
    if kind == "int":
        return INT, draw(st.integers(min_value=-(2**63), max_value=2**63 - 1))
    if kind == "real":
        return REAL, draw(
            st.floats(allow_nan=False, allow_infinity=False, width=64)
        )
    if kind == "bool":
        return BOOL, draw(st.booleans())
    if kind == "str":
        return STR, draw(st.text(max_size=50))
    if kind == "bytes":
        return BYTES, draw(st.binary(max_size=200))
    if kind == "link":
        link = draw(st.integers(min_value=0, max_value=1000))
        side = draw(st.integers(min_value=0, max_value=1))
        return LINK, LinkEnd(EndRef(link, side))
    if kind == "array":
        # element type fixed per array; links inside arrays exercise
        # the nested-enclosure path
        elem = draw(st.sampled_from(["int", "link"]))
        n = draw(st.integers(min_value=0, max_value=5))
        if elem == "int":
            return ArrayType(INT), [
                draw(st.integers(min_value=-1000, max_value=1000))
                for _ in range(n)
            ]
        return ArrayType(LINK), [
            LinkEnd(EndRef(draw(st.integers(min_value=0, max_value=99)), 0))
            for _ in range(n)
        ]
    # record
    nfields = draw(st.integers(min_value=1, max_value=3))
    fields = []
    values = {}
    for i in range(nfields):
        ft, fv = draw(typed_value(depth=0))
        fields.append((f"f{i}", ft))
        values[f"f{i}"] = fv
    return RecordType("r", fields), values


@st.composite
def signature_and_args(draw):
    n = draw(st.integers(min_value=0, max_value=4))
    pairs = [draw(typed_value()) for _ in range(n)]
    types = tuple(t for t, _ in pairs)
    values = tuple(v for _, v in pairs)
    return types, values


def _normalise(value):
    """LinkEnds decode to fresh handles; compare by ref.  Arrays decode
    to lists."""
    if isinstance(value, LinkEnd):
        return ("link", value.end_ref)
    if isinstance(value, tuple):
        return tuple(_normalise(v) for v in value)
    if isinstance(value, list):
        return [_normalise(v) for v in value]
    if isinstance(value, dict):
        return {k: _normalise(v) for k, v in value.items()}
    return value


@given(signature_and_args())
@settings(max_examples=200, deadline=None)
def test_roundtrip_identity(sig_args):
    types, values = sig_args
    payload, encs = codec.marshal(types, values)
    out = codec.unmarshal(types, payload, encs, lambda ref: LinkEnd(ref))
    assert _normalise(out) == _normalise(values)


@given(signature_and_args())
@settings(max_examples=200, deadline=None)
def test_enclosures_extracted_in_payload_order(sig_args):
    types, values = sig_args
    payload, encs = codec.marshal(types, values)

    def walk(t, v, acc):
        if isinstance(v, LinkEnd):
            acc.append(v.end_ref)
        elif isinstance(v, (list, tuple)):
            for item in v:
                walk(None, item, acc)
        elif isinstance(v, dict):
            # record fields encode in declared order
            rec_t = t
            for name, _ft in rec_t.fields:
                walk(None, v[name], acc)
        return acc

    expected = []
    for t, v in zip(types, values):
        walk(t, v, expected)
    assert encs == expected


@given(signature_and_args())
@settings(max_examples=100, deadline=None)
def test_marshal_is_deterministic(sig_args):
    types, values = sig_args
    assert codec.marshal(types, values) == codec.marshal(types, values)


@given(st.binary(max_size=500), st.binary(max_size=500))
@settings(max_examples=100, deadline=None)
def test_payload_size_additive_for_bytes(a, b):
    p1, _ = codec.marshal((BYTES,), (a,))
    p2, _ = codec.marshal((BYTES,), (b,))
    p12, _ = codec.marshal((BYTES, BYTES), (a, b))
    assert len(p12) == len(p1) + len(p2)
