"""Exactly-once-or-typed-failure, under any seeded fault schedule.

Hypothesis drives random drop/duplication/delay rates and seeds
through a sequential RPC conversation on a runtime-recovery backend.
Whatever the fault schedule decides, the end state must be:

  - every operation either completes (the client sees *its own*
    reply, once) or raises the typed `RecoveryExhausted` — never a
    hang, never a silent loss, never an unhandled error;
  - the server *executes* each admitted request at most once — wire
    duplicates and retransmits are answered from the reply cache, not
    re-run (the dedup half of at-most-once semantics);
  - the cluster's link accounting still balances (`cluster.check()`).

This is the property the whole recovery layer exists to uphold
(docs/FAULTS.md); the E14 bench measures its cost, this suite proves
its safety.
"""

from hypothesis import given, settings, strategies as st

from repro.core.api import (
    INT,
    Operation,
    Proc,
    RecoveryExhausted,
    RecoveryPolicy,
    make_cluster,
)
from repro.core.exceptions import LynxError
from repro.sim.faults import FaultPlan

PROP = Operation("prop", (INT,), (INT,))

POLICY = RecoveryPolicy(timeout_ms=40.0, max_retries=2,
                        backoff_factor=2.0, jitter_frac=0.1)


class EchoServer(Proc):
    """Echoes the request index back; records every *execution* so the
    test can prove no duplicate was ever re-run."""

    def __init__(self):
        self.executed = []

    def main(self, ctx):
        (end,) = ctx.initial_links
        yield from ctx.register(PROP)
        yield from ctx.open(end)
        while True:
            try:
                inc = yield from ctx.wait_request((end,))
                self.executed.append(inc.args[0])
                yield from ctx.reply(inc, (inc.args[0],))
            except LynxError:
                return


class SequentialClient(Proc):
    def __init__(self, count):
        self.count = count
        self.completed = []
        self.exhausted = []

    def main(self, ctx):
        (end,) = ctx.initial_links
        for i in range(self.count):
            try:
                (echo,) = yield from ctx.connect(end, PROP, (i,))
            except RecoveryExhausted:
                self.exhausted.append(i)
            else:
                # the reply the client sees is its own, not a
                # neighbour's resurrected duplicate
                assert echo == i, (echo, i)
                self.completed.append(i)
        try:
            yield from ctx.destroy(end)
        except LynxError:
            pass


@given(
    seed=st.integers(0, 2**16),
    drop=st.floats(0.0, 0.45),
    dup=st.floats(0.0, 0.4),
    delay=st.floats(0.0, 15.0),
    count=st.integers(1, 6),
)
@settings(max_examples=25, deadline=None)
def test_every_op_completes_once_or_raises_typed(seed, drop, dup, delay,
                                                 count):
    plan = FaultPlan().drop(drop).duplicate(dup).delay(delay)
    cluster = make_cluster("ideal", seed=seed)
    cluster.install_faults(plan)
    cluster.install_recovery(POLICY)
    server = EchoServer()
    client = SequentialClient(count)
    c = cluster.spawn(client, "client")
    s = cluster.spawn(server, "server")
    cluster.create_link(c, s)
    cluster.run_until_quiet(max_ms=1e7)
    assert cluster.all_finished, cluster.unfinished()

    # exactly once or typed failure — and nothing else
    assert sorted(client.completed + client.exhausted) == list(range(count))
    assert not set(client.completed) & set(client.exhausted)
    # no admitted request was executed twice, however many wire copies
    # arrived (retransmits and duplicates hit the reply cache instead)
    assert len(server.executed) == len(set(server.executed))
    # the server never executed an index the client didn't send
    assert set(server.executed) <= set(range(count))
    # every completed op was actually executed server-side
    assert set(client.completed) <= set(server.executed)
    cluster.check()


@given(seed=st.integers(0, 2**16))
@settings(max_examples=10, deadline=None)
def test_same_seed_same_outcome(seed):
    """The whole faulted conversation is a pure function of the seed —
    and of the seed only: executing it on the sharded-serial engine
    (`repro.sim.backends`) instead of the global heap changes nothing."""

    def run(sim_backend="global", shards=1):
        plan = FaultPlan().drop(0.3).duplicate(0.2).delay(10.0)
        cluster = make_cluster("ideal", seed=seed,
                               sim_backend=sim_backend, shards=shards)
        cluster.install_faults(plan)
        cluster.install_recovery(POLICY)
        server = EchoServer()
        client = SequentialClient(4)
        c = cluster.spawn(client, "client")
        s = cluster.spawn(server, "server")
        cluster.create_link(c, s)
        cluster.run_until_quiet(max_ms=1e7)
        return (client.completed, client.exhausted, server.executed,
                dict(cluster.metrics.counters("faults.")),
                dict(cluster.metrics.counters("recovery.")),
                cluster.engine.now)

    reference = run()
    assert run() == reference
    assert run(sim_backend="sharded-serial", shards=4) == reference
