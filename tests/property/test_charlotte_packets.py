"""Property tests for Charlotte's figure-2 packetisation machinery."""

from hypothesis import given, settings, strategies as st

from repro.charlotte.runtime import _OutTransfer, _PartialIn, CharlotteRuntime
from repro.core.links import EndRef
from repro.core.wire import MsgKind, WireMessage


class _Stub:
    """Just enough of a runtime for `_packetise` (it only reads the
    clock for packet timestamps)."""

    class engine:  # noqa: N801 - attribute stand-in
        now = 0.0


def packetise(logical: WireMessage) -> _OutTransfer:
    return CharlotteRuntime._packetise(_Stub(), logical)


@st.composite
def logical_message(draw):
    kind = draw(st.sampled_from([MsgKind.REQUEST, MsgKind.REPLY,
                                 MsgKind.EXCEPTION]))
    n_enc = draw(st.integers(min_value=0, max_value=6))
    encs = [EndRef(100 + i, draw(st.integers(0, 1))) for i in range(n_enc)]
    payload = draw(st.binary(max_size=64))
    return WireMessage(
        kind=kind,
        seq=draw(st.integers(min_value=1, max_value=1000)),
        opname="op",
        payload=payload,
        enclosures=encs,
        enclosure_meta=[{"i": i} for i in range(n_enc)],
        enc_total=n_enc,
    )


@given(logical_message())
@settings(max_examples=200, deadline=None)
def test_packets_carry_at_most_one_enclosure_each(msg):
    tr = packetise(msg)
    for pkt in tr.packets:
        assert len(pkt.enclosures) <= 1  # the kernel's §3.2.2 constraint


@given(logical_message())
@settings(max_examples=200, deadline=None)
def test_packet_count_matches_figure_2(msg):
    tr = packetise(msg)
    expected = 1 + max(0, len(msg.enclosures) - 1)
    assert len(tr.packets) == expected
    # goahead is required exactly for requests with >= 2 enclosures
    assert tr.needs_goahead == (
        msg.kind is MsgKind.REQUEST and len(msg.enclosures) >= 2
    )


@given(logical_message())
@settings(max_examples=200, deadline=None)
def test_reassembly_restores_the_logical_message(msg):
    """Feed the packets through the receiver's _PartialIn assembly and
    compare with the original."""
    tr = packetise(msg)
    first = tr.packets[0]
    if len(msg.enclosures) < 2:
        # single-packet case: the first packet IS the message
        assert first.payload == msg.payload
        assert first.enclosures == msg.enclosures
        return
    part = _PartialIn(first, first.enc_total, list(first.enclosures),
                      list(first.enclosure_meta))
    for pkt in tr.packets[1:]:
        assert pkt.kind is MsgKind.ENC
        assert pkt.seq == msg.seq  # correlated by the original seq
        part.enclosures.extend(pkt.enclosures)
        part.metas.extend(pkt.enclosure_meta)
    assert part.complete
    full = part.first.clone_for_resend()
    full.enclosures = part.enclosures
    full.enclosure_meta = part.metas
    assert full.kind is msg.kind
    assert full.payload == msg.payload
    assert full.enclosures == msg.enclosures
    assert full.enclosure_meta == msg.enclosure_meta


@given(logical_message())
@settings(max_examples=100, deadline=None)
def test_partial_is_incomplete_until_last_packet(msg):
    tr = packetise(msg)
    if len(msg.enclosures) < 2:
        return
    first = tr.packets[0]
    part = _PartialIn(first, first.enc_total, list(first.enclosures),
                      list(first.enclosure_meta))
    for pkt in tr.packets[1:-1]:
        assert not part.complete
        part.enclosures.extend(pkt.enclosures)
        part.metas.extend(pkt.enclosure_meta)
    assert not part.complete
    part.enclosures.extend(tr.packets[-1].enclosures)
    part.metas.extend(tr.packets[-1].enclosure_meta)
    assert part.complete
