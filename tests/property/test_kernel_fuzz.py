"""Randomised protocol fuzz across all three kernels.

Hypothesis drives random (but type-correct) schedules — queue
open/close toggling, bursts of concurrent connects, random payload
sizes and delays — through a two-process conversation on each kernel.
Whatever the interleaving, every request must eventually be served
exactly once, in per-queue FIFO order, with no protocol violations.

This is where interleaving bugs that hand-written scenarios miss tend
to surface (the Charlotte ALLOW-pump bug was of exactly this shape).
"""

import pytest
from hypothesis import given, settings, strategies as st

from repro.core.api import BYTES, INT, KERNEL_KINDS, Operation, Proc, make_cluster

ADD = Operation("add", (INT, INT), (INT,))
BLOB = Operation("blob", (BYTES,), (INT,))


class FuzzServer(Proc):
    """Serves ``total`` requests while randomly toggling its queue
    closed between services (stressing the §3.2.1 machinery)."""

    def __init__(self, total, toggles):
        self.total = total
        self.toggles = list(toggles)
        self.seen = []

    def main(self, ctx):
        (end,) = ctx.initial_links
        yield from ctx.register(ADD, BLOB)
        yield from ctx.open(end)
        for i in range(self.total):
            inc = yield from ctx.wait_request()
            self.seen.append(inc.args[0] if inc.op.name == "add"
                             else len(inc.args[0]))
            yield from ctx.reply(
                inc,
                (inc.args[0] + inc.args[1],) if inc.op.name == "add"
                else (len(inc.args[0]),),
            )
            if i < len(self.toggles) and self.toggles[i]:
                # close the queue for a moment (racing inbound traffic)
                yield from ctx.close(end)
                yield from ctx.delay(float(1 + 7 * (i % 3)))
                yield from ctx.open(end)


class FuzzClient(Proc):
    """Issues the scripted mix of concurrent and sequential requests."""

    def __init__(self, script):
        self.script = script
        self.results = []
        self.expected = []

    def one(self, ctx, end, job):
        kind, a, b, delay = job
        if delay:
            yield from ctx.delay(float(delay))
        if kind == "add":
            r = yield from ctx.connect(end, ADD, (a, b))
            self.results.append(("add", a, r[0]))
        else:
            payload = b"z" * a
            r = yield from ctx.connect(end, BLOB, (payload,))
            self.results.append(("blob", a, r[0]))

    def main(self, ctx):
        (end,) = ctx.initial_links
        for i, job in enumerate(self.script):
            concurrent = job[4]
            if concurrent:
                yield from ctx.fork(self.one(ctx, end, job[:4]), f"j{i}")
            else:
                yield from self.one(ctx, end, job[:4])


job_strategy = st.tuples(
    st.sampled_from(["add", "blob"]),
    st.integers(min_value=0, max_value=500),   # a / payload size
    st.integers(min_value=-50, max_value=50),  # b
    st.integers(min_value=0, max_value=30),    # pre-delay ms
    st.booleans(),                              # run concurrently?
)


@pytest.mark.parametrize("kind", KERNEL_KINDS)
@given(
    script=st.lists(job_strategy, min_size=1, max_size=6),
    toggles=st.lists(st.booleans(), min_size=6, max_size=6),
)
@settings(max_examples=25, deadline=None)
def test_random_schedules_always_serve_everything(kind, script, toggles):
    cluster = make_cluster(kind, seed=3)
    server = FuzzServer(len(script), toggles)
    client = FuzzClient(script)
    s = cluster.spawn(server, "server")
    c = cluster.spawn(client, "client")
    cluster.create_link(s, c)
    cluster.run_until_quiet(max_ms=1e7)
    assert cluster.all_finished, (kind, cluster.unfinished())
    assert len(client.results) == len(script)
    for op, a, result in client.results:
        if op == "add":
            matching = [j for j in script if j[0] == "add" and j[1] == a]
            assert any(result == a + j[2] for j in matching)
        else:
            assert result == a
    # nothing tripped the internal consistency checks
    cluster.check()
