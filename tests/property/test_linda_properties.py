"""Property tests for the tuple-space engine and cross-kernel
equivalence of the mini-Linda adapters."""

import pytest
from hypothesis import given, settings, strategies as st

from repro.linda import ANY, make_linda
from repro.linda.space import TupleSpace, match

tuples = st.tuples(
    st.sampled_from(["a", "b", "c"]),
    st.integers(min_value=0, max_value=3),
)


@given(st.lists(st.tuples(st.sampled_from(["out", "take", "read"]), tuples),
                max_size=30))
@settings(max_examples=200, deadline=None)
def test_space_conserves_tuples(script):
    """Model-level conservation: tuples present = outs - successful
    takes; reads never change the census; waiters only exist for
    patterns with no current match."""
    s = TupleSpace()
    outs = 0
    takes = 0
    for op, tup in script:
        if op == "out":
            s.out(tup)
            outs += 1
        elif op == "take":
            got = s.try_match(tup, take=True)
            if got is not None:
                takes += 1
                assert match(tup, got)
        else:
            before = len(s)
            got = s.try_match(tup, take=False)
            assert len(s) == before
            if got is not None:
                assert match(tup, got)
    assert len(s) == outs - takes


@given(st.lists(tuples, min_size=1, max_size=8), st.integers(0, 7))
@settings(max_examples=100, deadline=None)
def test_waiters_never_coexist_with_matches(script, wait_idx):
    """After any out sequence, a blocked taker for a pattern that now
    matches something is impossible: out() must have released it."""
    s = TupleSpace()
    pattern = (ANY, script[wait_idx % len(script)][1])
    released = []
    w = s.add_waiter(pattern, take=True, token="w")
    for tup in script:
        for waiter, served in s.out(tup):
            released.append((waiter.token, served))
    if released:
        assert released[0][0] == "w"
        assert match(pattern, released[0][1])
        assert w not in s.waiters
    else:
        # nothing matched; the waiter must still be parked and no
        # stored tuple may match its pattern
        assert w in s.waiters
        assert s.try_match(pattern, take=False) is None


@pytest.mark.parametrize("seed", [0, 1])
def test_adapters_agree_on_final_results(seed):
    """The same seeded Linda script yields the same multiset of results
    on all three kernels (timing differs wildly; outcomes must not)."""
    import random

    def run(kind):
        rng = random.Random(seed)
        system = make_linda(kind)
        results = []

        def producer(c):
            for i in range(6):
                yield from c.out(("item", rng.randint(0, 2), i))
            yield from c.close()

        def consumer(c, tag):
            for _ in range(3):
                tup = yield from c.take(("item", ANY, ANY))
                results.append(tup)
            yield from c.close()

        system.spawn(producer(system.client("p")))
        system.spawn(consumer(system.client("c1"), 1))
        system.spawn(consumer(system.client("c2"), 2))
        system.run_until_quiet(max_ms=1e6)
        assert system.all_finished
        return sorted(results, key=str)

    base = run("soda")
    assert run("chrysalis") == base
    assert run("charlotte") == base
