"""Property-based tests for the simulation substrate."""

import math

from hypothesis import given, settings, strategies as st

from repro.sim.engine import Engine
from repro.sim.metrics import LatencyRecorder
from repro.sim.rng import SimRandom


@given(st.lists(st.floats(min_value=0.0, max_value=1e6), max_size=60))
@settings(max_examples=200, deadline=None)
def test_engine_fires_in_nondecreasing_time_order(delays):
    eng = Engine()
    fired = []
    for d in delays:
        eng.schedule(d, lambda d=d: fired.append(eng.now))
    eng.run()
    assert fired == sorted(fired)
    assert len(fired) == len(delays)


@given(
    st.lists(st.floats(min_value=0.0, max_value=100.0), max_size=40),
    st.data(),
)
@settings(max_examples=100, deadline=None)
def test_engine_cancellation_removes_exactly_the_cancelled(delays, data):
    eng = Engine()
    events = []
    fired = []
    for i, d in enumerate(delays):
        events.append(eng.schedule(d, fired.append, i))
    if events:
        to_cancel = data.draw(
            st.sets(st.integers(min_value=0, max_value=len(events) - 1))
        )
    else:
        to_cancel = set()
    for i in to_cancel:
        events[i].cancel()
    eng.run()
    assert sorted(fired) == sorted(set(range(len(delays))) - to_cancel)


@given(st.lists(st.floats(min_value=-1e9, max_value=1e9), min_size=1,
                max_size=200))
@settings(max_examples=200, deadline=None)
def test_percentiles_are_bounded_and_monotone(samples):
    rec = LatencyRecorder()
    for s in samples:
        rec.record(s)
    lo, hi = min(samples), max(samples)
    span = max(abs(lo), abs(hi), 1.0)
    eps = span * 1e-9  # interpolation may overshoot by an ulp or two
    last = -math.inf
    for p in (0, 10, 25, 50, 75, 90, 99, 100):
        v = rec.percentile(p)
        assert lo - eps <= v <= hi + eps
        assert v >= last - eps
        last = v
    assert lo - eps <= rec.mean <= hi + eps


@given(st.integers(min_value=0, max_value=2**31), st.text(min_size=1,
                                                          max_size=20))
@settings(max_examples=100, deadline=None)
def test_simrandom_reproducible_and_child_streams_differ(seed, name):
    a = SimRandom(seed, name)
    b = SimRandom(seed, name)
    assert [a.random() for _ in range(10)] == [b.random() for _ in range(10)]
    parent = SimRandom(seed, name)
    c1 = parent.child("one")
    c2 = parent.child("two")
    s1 = [c1.random() for _ in range(10)]
    s2 = [c2.random() for _ in range(10)]
    assert s1 != s2  # astronomically unlikely to collide


@given(st.floats(min_value=0.0, max_value=1.0), st.integers(0, 2**20))
@settings(max_examples=100, deadline=None)
def test_bernoulli_edge_cases(p, seed):
    r = SimRandom(seed, "b")
    if p == 0.0:
        assert not any(r.bernoulli(p) for _ in range(20))
    elif p == 1.0:
        assert all(r.bernoulli(p) for _ in range(20))
    else:
        r.bernoulli(p)  # just must not crash
