"""Property-based tests on whole LYNX runs (fake kernel for speed).

Random RPC schedules and random link-passing chains must always
terminate with matching replies, conserved link ownership and clean
registry invariants — the closest thing the reproduction has to a
model checker for the runtime base.
"""

from hypothesis import given, settings, strategies as st

from repro.core.api import BYTES, INT, LINK, Operation, Proc
from repro.core.registry import EndDisposition
from tests.core.fakes import FakeCluster

ADD = Operation("add", (INT, INT), (INT,))
GIVE = Operation("give", (LINK,), ())


class _Server(Proc):
    def __init__(self, n):
        self.n = n

    def main(self, ctx):
        (end,) = ctx.initial_links
        yield from ctx.register(ADD)
        yield from ctx.open(end)
        for _ in range(self.n):
            inc = yield from ctx.wait_request()
            yield from ctx.reply(inc, (inc.args[0] + inc.args[1],))


class _Client(Proc):
    def __init__(self, jobs, delays):
        self.jobs = jobs
        self.delays = delays
        self.replies = []

    def main(self, ctx):
        (end,) = ctx.initial_links
        for (a, b), d in zip(self.jobs, self.delays):
            if d:
                yield from ctx.delay(float(d))
            r = yield from ctx.connect(end, ADD, (a, b))
            self.replies.append(r[0])


@given(
    st.lists(
        st.tuples(st.integers(-100, 100), st.integers(-100, 100)),
        min_size=1,
        max_size=8,
    ),
    st.data(),
)
@settings(max_examples=60, deadline=None)
def test_random_rpc_schedules_complete_with_correct_replies(jobs, data):
    delays = data.draw(
        st.lists(
            st.integers(min_value=0, max_value=20),
            min_size=len(jobs),
            max_size=len(jobs),
        )
    )
    cluster = FakeCluster()
    server = _Server(len(jobs))
    client = _Client(jobs, delays)
    s = cluster.spawn(server, "server")
    c = cluster.spawn(client, "client")
    cluster.create_link(s, c)
    cluster.run_until_quiet(max_ms=1e6)
    assert cluster.all_finished
    assert client.replies == [a + b for a, b in jobs]
    cluster.check()


class _ChainPasser(Proc):
    """Passes a bundle of link ends along a chain of processes."""

    def __init__(self, is_first, n_ends):
        self.is_first = is_first
        self.n_ends = n_ends

    def main(self, ctx):
        if self.is_first:
            (out,) = ctx.initial_links
            yield from ctx.register(GIVE)
            ends = []
            for _ in range(self.n_ends):
                a, b = yield from ctx.new_link()
                ends.append(b)  # keep `a` here; move `b` down the chain
            for e in ends:
                yield from ctx.connect(out, GIVE, (e,))
            # stay alive: our termination would destroy the fresh links
            # while their far ends are still travelling (§2.2)
            yield from ctx.delay(50000.0)
        else:
            inbound, *rest = ctx.initial_links
            out = rest[0] if rest else None
            yield from ctx.register(GIVE)
            yield from ctx.open(inbound)
            for _ in range(self.n_ends):
                inc = yield from ctx.wait_request()
                moved = inc.args[0]
                yield from ctx.reply(inc, ())
                if out is not None:
                    yield from ctx.connect(out, GIVE, (moved,))


@given(
    st.integers(min_value=2, max_value=5),
    st.integers(min_value=1, max_value=4),
)
@settings(max_examples=40, deadline=None)
def test_ownership_conserved_through_passing_chains(chain_len, n_ends):
    """After n ends travel a chain of length k, every end is owned by
    exactly the last process, nothing is lost, and the registry's
    invariants hold."""
    cluster = FakeCluster()
    procs = [
        cluster.spawn(
            _ChainPasser(i == 0, n_ends), f"p{i}"
        )
        for i in range(chain_len)
    ]
    for i in range(chain_len - 1):
        cluster.create_link(procs[i], procs[i + 1])
    cluster.run_until_quiet(max_ms=1e6)
    assert cluster.all_finished, cluster.unfinished()
    assert cluster.registry.lost_ends() == []
    # transport links get ids 1..chain_len-1; the fresh links follow.
    # Side 0 of each fresh link stays at p0; side 1 must have reached
    # the tail, hop by hop.
    from repro.core.links import EndRef

    last = f"p{chain_len - 1}"
    for link_id in range(chain_len, chain_len + n_ends):
        assert cluster.registry.owner_of(EndRef(link_id, 0)) == "p0"
        assert cluster.registry.owner_of(EndRef(link_id, 1)) == last
    cluster.check()
