"""The shipped examples must run green on every kernel."""

import subprocess
import sys
import os

import pytest

from repro.core.api import KERNEL_KINDS

EXAMPLES = os.path.join(os.path.dirname(__file__), "..", "..", "examples")


def run_example(script: str, *args: str) -> str:
    proc = subprocess.run(
        [sys.executable, os.path.join(EXAMPLES, script), *args],
        capture_output=True,
        text=True,
        timeout=180,
    )
    assert proc.returncode == 0, proc.stderr
    return proc.stdout


@pytest.mark.parametrize("kind", KERNEL_KINDS)
def test_quickstart(kind):
    out = run_example("quickstart.py", kind)
    assert f"kernel: {kind}" in out
    assert "hello, ada!" in out
    assert "hello, grace!" in out


@pytest.mark.parametrize("kind", KERNEL_KINDS)
def test_file_server(kind):
    out = run_example("file_server.py", kind)
    assert "2 opens across two applications" in out
    assert "lessons: hints, screening, simplicity" in out


@pytest.mark.parametrize("kind", KERNEL_KINDS)
def test_link_migration(kind):
    out = run_example("link_migration.py", kind)
    for i, worker in [(0, 0), (4, 1), (8, 2)]:
        assert f"{i}^2 = {i * i:2d}   served by worker{worker}" in out
    if kind == "charlotte":
        assert "kernel move-agreement messages" in out
    if kind == "soda":
        assert "redirect" in out


def test_kernel_comparison():
    out = run_example("kernel_comparison.py")
    for kind in KERNEL_KINDS:
        assert kind in out
    assert "three lessons" in out


@pytest.mark.parametrize("kind", KERNEL_KINDS)
def test_pipeline(kind):
    out = run_example("pipeline.py", kind)
    assert out.count("stored:") == 3
    assert "[4 tokens]" in out


def test_figure2():
    out = run_example("figure2.py")
    assert "goahead" in out
    assert out.count("enc") >= 2
    # the Chrysalis section has no protocol messages
    chrysalis_part = out.split("Chrysalis")[1]
    assert "goahead" not in chrysalis_part


@pytest.mark.parametrize("kind", KERNEL_KINDS)
def test_linda_bag_of_tasks(kind):
    out = run_example("linda_bag_of_tasks.py", kind)
    assert "7^2 = 49" in out
    assert "work share:" in out
