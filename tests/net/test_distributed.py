"""Real node processes under the supervisor, driven by the load generator.

A miniature of the E17 bench's measured half, small enough for the
tier-1 suite: spawn real ``python -m repro net serve`` processes, push
a handful of concurrent client coroutines through real sockets, force
the timeout/retry path with ``--drop-first``, hard-kill a primary and
watch every client fail over — all while the exactly-once accounting
(``completed + exhausted == issued``, duplicates absorbed server-side)
holds.
"""

import pytest

from repro.core.recovery import RecoveryPolicy
from repro.net.load import query_stats, run_load
from repro.net.supervisor import NodeSupervisor, SpawnFailed

#: fast wall-clock knobs: first wait 120 ms, doubling per retry
FAST = RecoveryPolicy(timeout_ms=120.0, max_retries=3,
                      backoff_factor=2.0, jitter_frac=0.0)


@pytest.fixture
def supervisor():
    sup = NodeSupervisor()
    try:
        yield sup
    finally:
        sup.stop_all()


def _spawn(sup, name, **kw):
    try:
        return sup.spawn(name, **kw)
    except (SpawnFailed, OSError) as exc:
        pytest.skip(f"this host forbids subprocesses/sockets ({exc})")


def test_clean_run_is_exactly_once(supervisor):
    node = _spawn(supervisor, "alpha")
    r = run_load([node.endpoint], clients=3, requests=2, policy=FAST)
    assert r.exactly_once
    assert (r.issued, r.completed, r.exhausted) == (6, 6, 0)
    assert r.retries == 0 and r.failovers == 0
    stats = query_stats(node.endpoint)
    assert stats["executed_unique"] == 6
    assert stats["duplicates"] == 0


def test_withheld_replies_force_retries_not_reexecution(supervisor):
    node = _spawn(supervisor, "dropper", drop_first=2)
    r = run_load([node.endpoint], clients=2, requests=2, policy=FAST)
    assert r.exactly_once
    assert r.completed == r.issued == 4
    assert r.retries >= 2  # one timeout per withheld reply, at least
    stats = query_stats(node.endpoint)
    # the retransmissions hit the dedup cache: replayed, not re-run
    assert stats["executed_unique"] == 4
    assert stats["dropped_replies"] == 2
    assert stats["duplicates"] >= 2


def test_crash_detection_fails_over_to_the_backup(supervisor):
    primary = _spawn(supervisor, "primary")
    backup = _spawn(supervisor, "backup")
    supervisor.crash("primary")
    assert not supervisor.alive("primary")
    assert supervisor.nodes["primary"].returncode is not None
    r = run_load([primary.endpoint, backup.endpoint],
                 clients=3, requests=2, policy=FAST)
    assert r.exactly_once
    assert r.completed == r.issued == 6
    # a dead primary is a refused connection, not a timeout
    assert r.failovers == 3 and r.connect_errors >= 3
    assert query_stats(backup.endpoint)["executed_unique"] == 6


def test_no_endpoints_left_exhausts_instead_of_hanging(supervisor):
    node = _spawn(supervisor, "doomed")
    supervisor.crash("doomed")
    r = run_load([node.endpoint], clients=2, requests=1, policy=FAST)
    assert r.exactly_once
    assert (r.completed, r.exhausted) == (0, 2)


def test_supervisor_bookkeeping(supervisor):
    node = _spawn(supervisor, "tcp-node", tcp=True)
    assert ":" in node.endpoint  # host:port form
    assert supervisor.alive("tcp-node")
    with pytest.raises(ValueError, match="duplicate"):
        supervisor.spawn("tcp-node")
    supervisor.stop_all()
    assert not supervisor.nodes
    supervisor.stop_all()  # idempotent
