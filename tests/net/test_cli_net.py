"""CLI surface of the real transport: ``repro net ...`` and the
``--sim-backend``-with-real-backend rejection."""

import pytest

from repro.cli import main
from repro.net.supervisor import NodeSupervisor, SpawnFailed


def test_sim_backend_with_real_backend_rejected(capsys):
    assert main(["flight", "--demo", "--kernel", "real-asyncio",
                 "--sim-backend", "sharded-serial"]) == 2
    err = capsys.readouterr().err
    assert "--sim-backend" in err and "real-asyncio" in err
    assert "real OS" in err


def test_top_rejects_the_same_combination(capsys):
    assert main(["top", "--kernel", "real-asyncio",
                 "--sim-backend", "sharded-serial", "--quick"]) == 2
    assert "--sim-backend" in capsys.readouterr().err


def test_sim_backend_still_works_on_simulated_kernels(capsys):
    assert main(["top", "--kernel", "ideal", "--scenario", "clean",
                 "--sim-backend", "global", "--quick", "--count", "8"]) == 0
    assert "goodput/s" in capsys.readouterr().out


def test_net_serve_needs_exactly_one_bind(capsys):
    assert main(["net", "serve", "--name", "n"]) == 2
    assert "exactly one" in capsys.readouterr().err
    assert main(["net", "serve", "--name", "n", "--socket", "/tmp/x.sock",
                 "--tcp", "0"]) == 2
    assert "exactly one" in capsys.readouterr().err


def test_net_load_end_to_end(capsys):
    with NodeSupervisor() as sup:
        try:
            node = sup.spawn("cli-node")
        except (SpawnFailed, OSError) as exc:
            pytest.skip(f"this host forbids subprocesses/sockets ({exc})")
        assert main(["net", "load", node.endpoint, "--clients", "2",
                     "--requests", "2", "--timeout-ms", "500"]) == 0
        out = capsys.readouterr().out
        assert "issued" in out and "throughput /s" in out
