"""The registered ``real-asyncio`` backend: ideal semantics, real bytes.

Reproducibility over real transport, stated once and pinned here:

* **deterministic for a seed** — everything the *simulated* half
  produces (RTT shapes, message counts, event order).  The backend
  round-trips every message through the switch *synchronously* in
  simulated time, so socket scheduling can never reorder engine
  events; same seed, same run, bit-identical to ``ideal``.
* **not deterministic** — wall-clock timing: the distributed
  ``serve``/``load`` path and every ``net_meas_*`` number in the E17
  bench depend on the host and the moment, exactly like S1.
"""

import pytest

from repro.core.api import kernel_profile, make_cluster, registered_kernels
from repro.core.wire import MsgKind, WireMessage
from repro.net import TransportUnavailable
from repro.net.cluster import NetCluster
from repro.workloads.rpc import run_rpc_workload


def _rpc(kind, **kw):
    try:
        return run_rpc_workload(kind, count=6, seed=3, **kw)
    except TransportUnavailable as exc:
        pytest.skip(f"this host forbids sockets ({exc})")


def _cluster(**kw):
    try:
        return make_cluster("real-asyncio", **kw)
    except TransportUnavailable as exc:
        pytest.skip(f"this host forbids sockets ({exc})")


def test_registered_with_the_real_transport_flag():
    assert "real-asyncio" in registered_kernels()
    assert kernel_profile("real-asyncio").real_transport
    for kind in ("charlotte", "soda", "chrysalis", "ideal"):
        assert not kernel_profile(kind).real_transport


def test_same_seed_runs_are_bit_identical():
    a, b = _rpc("real-asyncio"), _rpc("real-asyncio")
    assert a.rtts == b.rtts
    assert (a.messages, a.wire_bytes) == (b.messages, b.wire_bytes)


def test_matches_the_ideal_backend_shape_exactly():
    real, ideal = _rpc("real-asyncio"), _rpc("ideal")
    assert real.rtts == ideal.rtts
    assert (real.messages, real.wire_bytes) == (ideal.messages,
                                                ideal.wire_bytes)


def test_transit_substitutes_the_wires_copy():
    cluster = _cluster(seed=1)
    try:
        msg = WireMessage(kind=MsgKind.REQUEST, seq=9, opname="ping",
                          sighash=2**63, payload=b"over the wire")
        wired = cluster.kernel._transit(msg)
        # content-identical, but a distinct object rebuilt from bytes
        assert wired == msg
        assert wired is not msg
        assert cluster.metrics.get("net.frames") == 1
        assert cluster.metrics.get("net.frame_bytes") > 0
    finally:
        cluster.close()


def test_rejects_a_simulation_backend_choice():
    with pytest.raises(ValueError, match="real sockets"):
        NetCluster(seed=0, sim_backend="sharded:2")


def test_close_is_idempotent_and_releases_the_socket():
    cluster = _cluster(seed=0)
    cluster.close()
    assert cluster.kernel._conn is None
    cluster.close()
