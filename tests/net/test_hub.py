"""The in-process switch: bytes really cross the OS socket layer."""

import pytest

from repro.net.hub import Hub, TransportUnavailable, hub_connect


def _connect():
    try:
        return hub_connect()
    except TransportUnavailable as exc:
        pytest.skip(f"this host forbids sockets ({exc})")


def test_roundtrip_echoes_and_counts():
    conn = _connect()
    try:
        assert conn.roundtrip(b"hello switch") == b"hello switch"
        assert conn.roundtrip(b"") == b""
        assert conn.frames == 2
        # 4-byte length prefix per frame + the bodies
        assert conn.bytes_moved == 2 * 4 + len(b"hello switch")
    finally:
        conn.close()


def test_hub_is_a_process_singleton():
    _connect().close()
    assert Hub.shared() is Hub.shared()


def test_closed_connection_refuses_roundtrips():
    conn = _connect()
    conn.close()
    assert conn.closed
    conn.close()  # idempotent
    with pytest.raises(TransportUnavailable):
        conn.roundtrip(b"late")
