"""The frame codec round-trips every `WireMessage` field faithfully.

The simulated kernels pass messages by reference, so nothing ever
tested that a message *survives serialisation*.  The real transport
does nothing else — these tests pin the round-trip property field by
field, plus the failure modes (`FrameError`) a real wire can produce.
"""

import pytest

from repro.core.links import EndRef
from repro.core.wire import ExceptionCode, MsgKind, WireMessage
from repro.net.frames import (
    FRAME_VERSION,
    LENGTH_PREFIX,
    MAX_FRAME_BYTES,
    FrameError,
    FrameReader,
    decode_frame,
    encode_frame,
    pack_frame,
)
from repro.obs.causal import SpanContext


def _rt(msg):
    return decode_frame(encode_frame(msg))


def test_minimal_message_roundtrips():
    msg = WireMessage(kind=MsgKind.REQUEST)
    assert _rt(msg) == msg


def test_full_message_roundtrips_every_field():
    msg = WireMessage(
        kind=MsgKind.REQUEST,
        seq=12345,
        reply_to=-7,
        opname="transfer_funds",
        sighash=(1 << 63) + 99,  # unsigned 64-bit: must not overflow
        payload=b"\x00\xffbinary\x01",
        enclosures=[EndRef(3, 0), EndRef(41, 1)],
        enclosure_meta=[{}, {}],
        enc_total=2,
        error=ExceptionCode.REQUEST_ABORTED,
        sent_at=1234.5625,  # exact in binary64
        span=SpanContext(trace_id=2**64 - 1, span_id=17, parent_id=9,
                         sampled=True),
    )
    assert _rt(msg) == msg


@pytest.mark.parametrize("kind", list(MsgKind))
def test_every_kind_roundtrips(kind):
    assert _rt(WireMessage(kind=kind)).kind is kind


@pytest.mark.parametrize("error", [None] + list(ExceptionCode))
def test_every_error_code_roundtrips(error):
    assert _rt(WireMessage(kind=MsgKind.EXCEPTION, error=error)).error is error


@pytest.mark.parametrize("span", [
    None,
    SpanContext(trace_id=1, span_id=2),
    SpanContext(trace_id=1, span_id=2, parent_id=0),  # 0 is a real parent
    SpanContext(trace_id=1, span_id=2, parent_id=3, sampled=False),
])
def test_span_flag_combinations_roundtrip(span):
    assert _rt(WireMessage(kind=MsgKind.REPLY, span=span)).span == span


def test_unicode_opname_roundtrips():
    msg = WireMessage(kind=MsgKind.REQUEST, opname="réponse_λ")
    assert _rt(msg).opname == "réponse_λ"


def test_overlong_opname_refused():
    msg = WireMessage(kind=MsgKind.REQUEST, opname="x" * 70000)
    with pytest.raises(FrameError, match="opname too long"):
        encode_frame(msg)


def test_wrong_version_refused():
    body = bytearray(encode_frame(WireMessage(kind=MsgKind.REQUEST)))
    body[0] = FRAME_VERSION + 1
    with pytest.raises(FrameError, match="version"):
        decode_frame(bytes(body))


def test_truncated_body_refused():
    body = encode_frame(WireMessage(kind=MsgKind.REQUEST, payload=b"abc"))
    with pytest.raises(FrameError):
        decode_frame(body[:-2])
    with pytest.raises(FrameError, match="head"):
        decode_frame(body[:3])


def test_trailing_bytes_refused():
    body = encode_frame(WireMessage(kind=MsgKind.REQUEST))
    with pytest.raises(FrameError, match="trailing"):
        decode_frame(body + b"\x00")


def test_pack_frame_refuses_oversize():
    with pytest.raises(FrameError, match="too large"):
        pack_frame(b"x" * (MAX_FRAME_BYTES + 1))


def test_reader_reassembles_byte_by_byte():
    bodies = [
        encode_frame(WireMessage(kind=MsgKind.REQUEST, seq=i,
                                 payload=bytes([i]) * i))
        for i in range(1, 5)
    ]
    stream = b"".join(pack_frame(b) for b in bodies)
    reader = FrameReader()
    out = []
    for i in range(len(stream)):
        out.extend(reader.feed(stream[i:i + 1]))
    assert out == bodies
    assert reader.pending_bytes == 0


def test_reader_yields_multiple_frames_from_one_feed():
    bodies = [encode_frame(WireMessage(kind=MsgKind.ACK, seq=i))
              for i in range(3)]
    reader = FrameReader()
    assert reader.feed(b"".join(pack_frame(b) for b in bodies)) == bodies


def test_reader_refuses_absurd_length_prefix():
    reader = FrameReader()
    with pytest.raises(FrameError, match="exceeds the cap"):
        reader.feed(LENGTH_PREFIX.pack(MAX_FRAME_BYTES + 1))
