"""SODA runtime edge cases: probe backoff, crash repair, concurrent
freezes, redirect chains."""

import pytest

from repro.core.api import (
    BYTES,
    INT,
    LINK,
    LinkDestroyed,
    Operation,
    Proc,
    make_cluster,
)
from repro.sim.failure import CrashMode

ECHO = Operation("echo", (BYTES,), (BYTES,))
ADD = Operation("add", (INT, INT), (INT,))
GIVE = Operation("give", (LINK,), ())


def test_healthy_but_closed_receiver_is_not_presumed_destroyed():
    """A server that takes ages to open its queue triggers hint probes;
    the probes must confirm the hint and back off — never declare the
    link dead."""

    class Slow(Proc):
        def main(self, ctx):
            (end,) = ctx.initial_links
            yield from ctx.register(ECHO)
            yield from ctx.delay(900.0)  # several probe periods
            yield from ctx.open(end)
            inc = yield from ctx.wait_request()
            yield from ctx.reply(inc, (inc.args[0],))

    class Client(Proc):
        def __init__(self):
            self.reply = None
            self.error = None

        def main(self, ctx):
            (end,) = ctx.initial_links
            try:
                self.reply = yield from ctx.connect(end, ECHO, (b"p",))
            except LinkDestroyed as e:
                self.error = e

    cluster = make_cluster("soda")
    client = Client()
    s = cluster.spawn(Slow(), "slow")
    c = cluster.spawn(client, "client")
    cluster.create_link(s, c)
    cluster.run_until_quiet(max_ms=1e6)
    assert cluster.all_finished
    assert client.error is None
    assert client.reply == (b"p",)
    m = cluster.metrics
    assert m.get("soda.hint_probes") >= 1
    assert m.get("soda.links_presumed_destroyed") == 0
    cluster.check()


def test_crash_of_old_owner_after_move_repaired_by_discover():
    """§4.2: "node crashes ... would tend to precipitate a large number
    of broadcast searches for lost links."  The old owner dies after
    moving the end; the stale-hinted user feels the crash interrupt and
    must find the new owner by discover rather than declaring death."""

    class Alice(Proc):
        def main(self, ctx):
            to_carol, to_bob = ctx.initial_links
            yield from ctx.register(GIVE)
            yield from ctx.connect(to_bob, GIVE, (to_carol,))
            yield from ctx.delay(1e9)  # killed by injection

    class Bob(Proc):
        def main(self, ctx):
            (from_alice,) = ctx.initial_links
            yield from ctx.register(GIVE, ADD)
            yield from ctx.open(from_alice)
            inc = yield from ctx.wait_request()
            moved = inc.args[0]
            yield from ctx.reply(inc, ())
            yield from ctx.open(moved)
            inc2 = yield from ctx.wait_request()
            yield from ctx.reply(inc2, (inc2.args[0] + inc2.args[1],))

    class Carol(Proc):
        def __init__(self):
            self.reply = None

        def main(self, ctx):
            (to_link,) = ctx.initial_links
            yield from ctx.delay(300.0)  # move done, Alice dead
            self.reply = yield from ctx.connect(to_link, ADD, (6, 7))

    cluster = make_cluster("soda", cache_size=0)
    carol = Carol()
    c = cluster.spawn(carol, "carol")
    a = cluster.spawn(Alice(), "alice")
    b = cluster.spawn(Bob(), "bob")
    cluster.create_link(c, a)
    cluster.create_link(a, b)
    cluster.engine.schedule(200.0, cluster.crash_process, "alice",
                            CrashMode.PROCESSOR)
    cluster.run_until_quiet(max_ms=1e6)
    assert carol.reply == (13,), cluster.unfinished()
    assert cluster.metrics.get("soda.hints_repaired_by_discover") >= 1
    cluster.check()


def test_concurrent_freeze_searches_via_counter():
    """§4.2: "The existence of the counter permits multiple concurrent
    searches."  Two seekers lose their hints simultaneously with
    broadcasts dead; both freezes run, everyone unfreezes, both RPCs
    complete."""

    class Passer(Proc):
        """Gives its two inbound link ends to the collector."""

        def main(self, ctx):
            seek_link, to_collector = ctx.initial_links
            yield from ctx.register(GIVE)
            yield from ctx.connect(to_collector, GIVE, (seek_link,))
            yield from ctx.delay(1e7)  # alive but with cache disabled

    class Collector(Proc):
        def __init__(self):
            self.served = 0

        def serve_one(self, ctx, end):
            yield from ctx.open(end)
            inc = yield from ctx.wait_request([end])
            yield from ctx.reply(inc, (inc.args[0] + inc.args[1],))
            self.served += 1

        def main(self, ctx):
            ends = ctx.initial_links
            yield from ctx.register(GIVE, ADD)
            for e in ends:
                yield from ctx.open(e)
            got = []
            for _ in range(2):
                inc = yield from ctx.wait_request(ends)
                got.append(inc.args[0])
                yield from ctx.reply(inc, ())
            for moved in got:
                yield from ctx.fork(self.serve_one(ctx, moved), "serve")
            yield from ctx.delay(1e7)

    class Seeker(Proc):
        def __init__(self):
            self.reply = None

        def main(self, ctx):
            (link,) = ctx.initial_links
            yield from ctx.delay(400.0)  # both moves settled; hints stale
            self.reply = yield from ctx.connect(link, ADD, (1, 2))

    cluster = make_cluster("soda", cache_size=0, broadcast_loss=1.0)
    seek1, seek2 = Seeker(), Seeker()
    collector = Collector()
    s1 = cluster.spawn(seek1, "seek1")
    s2 = cluster.spawn(seek2, "seek2")
    p1 = cluster.spawn(Passer(), "pass1")
    p2 = cluster.spawn(Passer(), "pass2")
    col = cluster.spawn(collector, "collector")
    cluster.create_link(s1, p1)
    cluster.create_link(s2, p2)
    cluster.create_link(p1, col)
    cluster.create_link(p2, col)
    cluster.run_until_quiet(max_ms=2e6)
    assert seek1.reply == (3,)
    assert seek2.reply == (3,)
    m = cluster.metrics
    assert m.get("soda.freeze.searches") >= 2
    assert m.get("soda.hints_repaired_by_freeze") >= 2
    # every frozen process was released (counters back to zero)
    for p in cluster.processes.values():
        assert p.runtime.frozen_count == 0
    cluster.check()


def test_redirect_chain_through_two_old_owners():
    """The end moves A -> B -> C; the observer's hint still points at
    A.  With caches on, repair is a chain of redirects."""

    class Passer(Proc):
        def __init__(self, forward: bool):
            self.forward = forward

        def main(self, ctx):
            if self.forward:
                inbound, outbound = ctx.initial_links
            else:
                (inbound,) = ctx.initial_links
            yield from ctx.register(GIVE, ADD)
            yield from ctx.open(inbound)
            inc = yield from ctx.wait_request([inbound])
            moved = inc.args[0]
            yield from ctx.reply(inc, ())
            if self.forward:
                yield from ctx.connect(outbound, GIVE, (moved,))
                yield from ctx.delay(5000.0)  # serve redirects
            else:
                yield from ctx.open(moved)
                inc2 = yield from ctx.wait_request([moved])
                yield from ctx.reply(inc2, (inc2.args[0] * inc2.args[1],))

    class Origin(Proc):
        def main(self, ctx):
            obs_link, to_b = ctx.initial_links
            yield from ctx.register(GIVE)
            yield from ctx.connect(to_b, GIVE, (obs_link,))
            yield from ctx.delay(5000.0)  # serve redirects

    class Observer(Proc):
        def __init__(self):
            self.reply = None

        def main(self, ctx):
            (link,) = ctx.initial_links
            yield from ctx.delay(600.0)
            self.reply = yield from ctx.connect(link, ADD, (6, 7))

    cluster = make_cluster("soda")
    obs = Observer()
    o = cluster.spawn(obs, "observer")
    origin = cluster.spawn(Origin(), "origin")
    b = cluster.spawn(Passer(forward=True), "b")
    c = cluster.spawn(Passer(forward=False), "c")
    cluster.create_link(origin, o)
    cluster.create_link(origin, b)
    cluster.create_link(b, c)
    cluster.run_until_quiet(max_ms=1e6)
    assert obs.reply == (42,), cluster.unfinished()
    # two redirects: origin -> b, b -> c
    assert cluster.metrics.get("soda.redirects_served") >= 2
    assert cluster.metrics.get("soda.redirects_followed") >= 2
    cluster.check()
