"""Unit tests for the SODA kernel simulator (§4.1 semantics)."""

import pytest

from repro.analysis.costmodel import CostModel
from repro.core.registry import LinkRegistry
from repro.sim.engine import Engine
from repro.sim.metrics import MetricSet
from repro.sim.network import CSMABus
from repro.soda.kernel import (
    AcceptStatus,
    Interrupt,
    InterruptKind,
    SodaKernel,
)


def make_kernel(broadcast_loss=0.0, pair_limit=None):
    eng = Engine()
    metrics = MetricSet()
    costs = CostModel.default().soda
    if pair_limit is not None:
        from dataclasses import replace

        costs = replace(costs, pair_request_limit=pair_limit)
    bus = CSMABus(eng, metrics=metrics, broadcast_loss=broadcast_loss)
    return eng, SodaKernel(eng, metrics, costs, bus, LinkRegistry())


class Collector:
    """A fake client processor: records interrupts."""

    def __init__(self, kernel, name, node=0):
        self.name = name
        self.port = kernel.register_process(name, node)
        self.interrupts = []
        self.port.set_handler(self.interrupts.append)

    def kinds(self):
        return [i.kind for i in self.interrupts]


def test_new_names_are_unique():
    eng, k = make_kernel()
    names = {k.new_name() for _ in range(100)}
    assert len(names) == 100


def test_request_interrupt_delivered_when_name_advertised():
    eng, k = make_kernel()
    a, b = Collector(k, "a"), Collector(k, "b")
    name = k.new_name()
    k.advertise("b", name)
    k.request("a", "b", name, {"kind": "req"}, 10, 0, b"payload")
    eng.run()
    assert b.kinds() == [InterruptKind.REQUEST]
    intr = b.interrupts[0]
    assert intr.frm == "a" and intr.name == name and intr.nsend == 10


def test_request_parks_when_name_not_advertised():
    """"A process feels a software interrupt when its id and one of its
    ADVERTISED names are specified" — otherwise nothing happens (the
    stale-hint case of §4.2)."""
    eng, k = make_kernel()
    a, b = Collector(k, "a"), Collector(k, "b")
    name = k.new_name()
    k.request("a", "b", name, {}, 0, 0, None)
    eng.run()
    assert b.interrupts == []
    # late advertisement delivers the parked request
    k.advertise("b", name)
    eng.run()
    assert b.kinds() == [InterruptKind.REQUEST]


def test_accept_transfers_both_directions_and_completes():
    eng, k = make_kernel()
    a, b = Collector(k, "a"), Collector(k, "b")
    name = k.new_name()
    k.advertise("b", name)
    rid = k.request("a", "b", name, {"kind": "x"}, 5, 7, "a-data")
    eng.run()
    got = []
    b.port.accept(rid, oob={"note": "hi"}, nsend=7, nrecv=5, data="b-data")\
        .add_done_callback(lambda f: got.append(f.value))
    eng.run()
    status, data = got[0]
    assert status is AcceptStatus.OK
    assert data == "a-data"  # accepter received the requester's data
    comp = [i for i in a.interrupts if i.kind is InterruptKind.COMPLETION]
    assert len(comp) == 1
    assert comp[0].data == "b-data"
    assert comp[0].oob == {"note": "hi"}


def test_zero_length_accept_moves_no_data():
    eng, k = make_kernel()
    a, b = Collector(k, "a"), Collector(k, "b")
    name = k.new_name()
    k.advertise("b", name)
    rid = k.request("a", "b", name, {}, 5, 0, "payload")
    eng.run()
    got = []
    b.port.accept(rid, oob={"kind": "destroyed"}, nrecv=0)\
        .add_done_callback(lambda f: got.append(f.value))
    eng.run()
    status, data = got[0]
    assert status is AcceptStatus.OK and data is None
    comp = [i for i in a.interrupts if i.kind is InterruptKind.COMPLETION]
    assert comp[0].oob == {"kind": "destroyed"}


def test_death_before_accept_gives_crash_interrupt():
    """§4.1: "If a process dies before accepting a request, the
    requester feels an interrupt that informs it of the crash." """
    eng, k = make_kernel()
    a, b = Collector(k, "a"), Collector(k, "b")
    name = k.new_name()
    k.advertise("b", name)
    k.request("a", "b", name, {}, 0, 0, None)
    eng.run()
    k.process_died("b")
    eng.run()
    assert InterruptKind.CRASH in a.kinds()


def test_request_to_dead_process_crashes_immediately():
    eng, k = make_kernel()
    a, b = Collector(k, "a"), Collector(k, "b")
    k.process_died("b")
    k.request("a", "b", k.new_name(), {}, 0, 0, None)
    eng.run()
    assert a.kinds() == [InterruptKind.CRASH]


def test_accept_of_withdrawn_request_reports_withdrawn():
    eng, k = make_kernel()
    a, b = Collector(k, "a"), Collector(k, "b")
    name = k.new_name()
    k.advertise("b", name)
    rid = k.request("a", "b", name, {}, 5, 0, "data")
    eng.run()
    assert k.withdraw("a", rid)
    got = []
    b.port.accept(rid, nrecv=5).add_done_callback(lambda f: got.append(f.value))
    eng.run()
    assert got[0][0] is AcceptStatus.WITHDRAWN
    # no completion interrupt reaches the requester
    assert InterruptKind.COMPLETION not in a.kinds()


def test_pair_limit_queues_excess_requests():
    """§4.2.1: outstanding requests between a pair are limited; excess
    waits invisibly at the sending kernel."""
    eng, k = make_kernel(pair_limit=2)
    a, b = Collector(k, "a"), Collector(k, "b")
    name = k.new_name()
    k.advertise("b", name)
    rids = [k.request("a", "b", name, {"i": i}, 0, 0, None) for i in range(4)]
    eng.run()
    assert len(b.interrupts) == 2  # only the first two delivered
    assert k.metrics.get("soda.pair_limit_queued") == 2
    # accepting one frees a slot; the third request flows
    got = []
    b.port.accept(rids[0]).add_done_callback(lambda f: got.append(f.value))
    eng.run()
    assert len(b.interrupts) == 3


def test_discover_finds_advertiser():
    eng, k = make_kernel()
    a, b = Collector(k, "a"), Collector(k, "b", node=1)
    name = k.new_name()
    k.advertise("b", name)
    got = []
    a.port.discover(name).add_done_callback(lambda f: got.append(f.value))
    eng.run()
    assert got == ["b"]


def test_discover_times_out_when_nobody_advertises():
    eng, k = make_kernel()
    a = Collector(k, "a")
    Collector(k, "b")
    got = []
    a.port.discover(12345).add_done_callback(lambda f: got.append(f.value))
    eng.run()
    assert got == [None]


def test_discover_unreliable_broadcast_can_fail():
    eng, k = make_kernel(broadcast_loss=1.0)
    a, b = Collector(k, "a"), Collector(k, "b")
    name = k.new_name()
    k.advertise("b", name)
    got = []
    a.port.discover(name).add_done_callback(lambda f: got.append(f.value))
    eng.run()
    assert got == [None]


def test_requests_from_dead_process_become_withdrawn():
    eng, k = make_kernel()
    a, b = Collector(k, "a"), Collector(k, "b")
    name = k.new_name()
    k.advertise("b", name)
    rid = k.request("a", "b", name, {}, 0, 0, None)
    eng.run()
    k.process_died("a")
    got = []
    b.port.accept(rid).add_done_callback(lambda f: got.append(f.value))
    eng.run()
    assert got[0][0] is AcceptStatus.WITHDRAWN


def test_process_ids_enumerates_live_processes():
    eng, k = make_kernel()
    Collector(k, "a")
    Collector(k, "b")
    Collector(k, "c")
    k.process_died("b")
    assert sorted(k.process_ids()) == ["a", "c"]


# ----------------------------------------------------------------------
# the four request varieties of §4.1: put, get, signal, exchange
# ----------------------------------------------------------------------
def _transfer(eng, k, a, b, nsend, nrecv, a_data, acc_nsend, acc_nrecv,
              b_data):
    name = k.new_name()
    k.advertise("b", name)
    rid = k.request("a", "b", name, {}, nsend, nrecv, a_data)
    eng.run()
    got = []
    b.port.accept(rid, nsend=acc_nsend, nrecv=acc_nrecv, data=b_data)\
        .add_done_callback(lambda f: got.append(f.value))
    eng.run()
    completion = [i for i in a.interrupts
                  if i.kind is InterruptKind.COMPLETION][-1]
    return got[0], completion


def test_put_moves_data_toward_accepter_only():
    eng, k = make_kernel()
    a, b = Collector(k, "a"), Collector(k, "b")
    (status, data), comp = _transfer(eng, k, a, b, 10, 0, "payload",
                                     0, 10, "ignored")
    assert status is AcceptStatus.OK
    assert data == "payload"      # accepter received the put
    assert comp.data is None      # requester got nothing back


def test_get_moves_data_toward_requester_only():
    eng, k = make_kernel()
    a, b = Collector(k, "a"), Collector(k, "b")
    (status, data), comp = _transfer(eng, k, a, b, 0, 10, None,
                                     10, 0, "served")
    assert status is AcceptStatus.OK
    assert data is None           # accepter received nothing
    assert comp.data == "served"  # requester got the data


def test_signal_moves_no_data_but_completes():
    eng, k = make_kernel()
    a, b = Collector(k, "a"), Collector(k, "b")
    (status, data), comp = _transfer(eng, k, a, b, 0, 0, None, 0, 0, None)
    assert status is AcceptStatus.OK
    assert data is None and comp.data is None


def test_exchange_moves_data_both_directions_simultaneously():
    eng, k = make_kernel()
    a, b = Collector(k, "a"), Collector(k, "b")
    (status, data), comp = _transfer(eng, k, a, b, 5, 5, "a->b",
                                     5, 5, "b->a")
    assert status is AcceptStatus.OK
    assert data == "a->b"
    assert comp.data == "b->a"


def test_amount_transferred_is_smaller_of_specified():
    """"The amount of data transferred in each direction is the smaller
    of the specified amounts." — a zero on either side means none."""
    eng, k = make_kernel()
    a, b = Collector(k, "a"), Collector(k, "b")
    # requester offers 10 but accepter will take 0: nothing moves
    (status, data), comp = _transfer(eng, k, a, b, 10, 0, "payload",
                                     0, 0, None)
    assert status is AcceptStatus.OK
    assert data is None
