"""SODA LYNX runtime behaviour: hints, caches, redirects, discover and
the freeze fallback (§4.2)."""

import pytest

from repro.core.api import (
    BYTES,
    INT,
    LINK,
    LinkDestroyed,
    Operation,
    Proc,
    RemoteCrash,
    RequestAborted,
    ThreadAborted,
    make_cluster,
)
from repro.sim.failure import CrashMode

ECHO = Operation("echo", (BYTES,), (BYTES,))
ADD = Operation("add", (INT, INT), (INT,))
GIVE = Operation("give", (LINK,), ())


class EchoServer(Proc):
    def __init__(self, n=1):
        self.n = n

    def main(self, ctx):
        (end,) = ctx.initial_links
        yield from ctx.register(ECHO, ADD)
        yield from ctx.open(end)
        for _ in range(self.n):
            inc = yield from ctx.wait_request()
            if inc.op.name == "echo":
                yield from ctx.reply(inc, (inc.args[0],))
            else:
                yield from ctx.reply(inc, (inc.args[0] + inc.args[1],))


def test_rpc_small_message_speed_vs_charlotte():
    """§4.3 footnote 2: "for small messages SODA was three times as
    fast as Charlotte"."""

    class Client(Proc):
        def __init__(self):
            self.rtt = None

        def main(self, ctx):
            (end,) = ctx.initial_links
            yield from ctx.connect(end, ECHO, (b"",))  # warm-up
            t0 = yield from ctx.now()
            yield from ctx.connect(end, ECHO, (b"",))
            self.rtt = (yield from ctx.now()) - t0

    cluster = make_cluster("soda")
    client = Client()
    s = cluster.spawn(EchoServer(2), "server")
    c = cluster.spawn(client, "client")
    cluster.create_link(s, c)
    cluster.run_until_quiet(max_ms=1e6)
    assert cluster.all_finished
    # ~3x faster than Charlotte's 57 ms (we accept 2.4x–3.6x)
    assert 57.0 / 3.6 < client.rtt < 57.0 / 2.4
    cluster.check()


def test_unwanted_requests_simply_wait_in_kernel():
    """The §3.2.1 reverse-direction scenario needs no bounce machinery
    under SODA: the unaccepted put just waits."""

    class A(Proc):
        def __init__(self):
            self.reply = None

        def main(self, ctx):
            (end,) = ctx.initial_links
            yield from ctx.register(ECHO, ADD)
            self.reply = yield from ctx.connect(end, ECHO, (b"ping",))
            yield from ctx.open(end)
            inc = yield from ctx.wait_request()
            yield from ctx.reply(inc, (inc.args[0] + inc.args[1],))

    class B(Proc):
        def __init__(self):
            self.reverse_reply = None

        def reverse(self, ctx, end):
            self.reverse_reply = yield from ctx.connect(end, ADD, (2, 3))

        def main(self, ctx):
            (end,) = ctx.initial_links
            yield from ctx.register(ECHO, ADD)
            yield from ctx.open(end)
            inc = yield from ctx.wait_request()
            yield from ctx.fork(self.reverse(ctx, end), "rev")
            yield from ctx.delay(1.0)
            yield from ctx.reply(inc, (inc.args[0],))

    cluster = make_cluster("soda")
    a_prog, b_prog = A(), B()
    a = cluster.spawn(a_prog, "A")
    b = cluster.spawn(b_prog, "B")
    cluster.create_link(a, b)
    cluster.run_until_quiet(max_ms=1e6)
    assert cluster.all_finished, cluster.unfinished()
    assert a_prog.reply == (b"ping",)
    assert b_prog.reverse_reply == (5,)
    assert cluster.metrics.get("runtime.unwanted") == 0
    cluster.check()


def test_move_then_stale_hint_repaired_by_cache_redirect():
    """§4.2: C's hint still points at A after A moved the end to B;
    A's cache keeps the name advertised and answers with a redirect."""

    class Carol(Proc):
        def __init__(self):
            self.reply = None

        def main(self, ctx):
            (to_link,) = ctx.initial_links
            yield from ctx.delay(200.0)  # the move has happened
            # our hint still says "alice"
            self.reply = yield from ctx.connect(to_link, ADD, (3, 4))

    class Alice(Proc):
        def main(self, ctx):
            to_carol, to_bob = ctx.initial_links
            yield from ctx.register(GIVE)
            yield from ctx.connect(to_bob, GIVE, (to_carol,))
            yield from ctx.delay(400.0)  # stay alive to serve redirects

    class Bob(Proc):
        def main(self, ctx):
            (from_alice,) = ctx.initial_links
            yield from ctx.register(GIVE, ADD)
            yield from ctx.open(from_alice)
            inc = yield from ctx.wait_request()
            moved = inc.args[0]
            yield from ctx.reply(inc, ())
            yield from ctx.open(moved)
            inc2 = yield from ctx.wait_request()
            yield from ctx.reply(inc2, (inc2.args[0] + inc2.args[1],))

    cluster = make_cluster("soda")
    carol, alice = Carol(), Alice()
    c = cluster.spawn(carol, "carol")
    a = cluster.spawn(alice, "alice")
    b = cluster.spawn(Bob(), "bob")
    cluster.create_link(c, a)
    cluster.create_link(a, b)
    cluster.run_until_quiet(max_ms=1e6)
    assert cluster.all_finished, cluster.unfinished()
    assert carol.reply == (7,)
    m = cluster.metrics
    assert m.get("soda.redirects_served") >= 1
    assert m.get("soda.redirects_followed") >= 1
    cluster.check()


def test_forgotten_cache_repaired_by_discover():
    """§4.2: "If A has forgotten, C can use the discover command" —
    force eviction with cache_size=0."""

    class Carol(Proc):
        def __init__(self):
            self.reply = None

        def main(self, ctx):
            (to_link,) = ctx.initial_links
            yield from ctx.delay(200.0)
            self.reply = yield from ctx.connect(to_link, ADD, (5, 6))

    class Alice(Proc):
        def main(self, ctx):
            to_carol, to_bob = ctx.initial_links
            yield from ctx.register(GIVE)
            yield from ctx.connect(to_bob, GIVE, (to_carol,))
            yield from ctx.delay(2000.0)

    class Bob(Proc):
        def main(self, ctx):
            (from_alice,) = ctx.initial_links
            yield from ctx.register(GIVE, ADD)
            yield from ctx.open(from_alice)
            inc = yield from ctx.wait_request()
            moved = inc.args[0]
            yield from ctx.reply(inc, ())
            yield from ctx.open(moved)
            inc2 = yield from ctx.wait_request()
            yield from ctx.reply(inc2, (inc2.args[0] + inc2.args[1],))

    cluster = make_cluster("soda", cache_size=0)
    carol = Carol()
    c = cluster.spawn(carol, "carol")
    a = cluster.spawn(Alice(), "alice")
    b = cluster.spawn(Bob(), "bob")
    cluster.create_link(c, a)
    cluster.create_link(a, b)
    cluster.run_until_quiet(max_ms=1e6)
    assert cluster.all_finished, cluster.unfinished()
    assert carol.reply == (11,)
    m = cluster.metrics
    assert m.get("soda.cache_evictions") >= 1
    assert m.get("soda.hints_repaired_by_discover") >= 1
    cluster.check()


def test_freeze_fallback_when_discover_is_dead():
    """§4.2's absolute algorithm: with broadcasts 100% lossy and the
    cache gone, only freezing the world can find the moved end."""

    class Carol(Proc):
        def __init__(self):
            self.reply = None

        def main(self, ctx):
            (to_link,) = ctx.initial_links
            yield from ctx.delay(200.0)
            self.reply = yield from ctx.connect(to_link, ADD, (8, 9))

    class Alice(Proc):
        def main(self, ctx):
            to_carol, to_bob = ctx.initial_links
            yield from ctx.register(GIVE)
            yield from ctx.connect(to_bob, GIVE, (to_carol,))
            yield from ctx.delay(10000.0)

    class Bob(Proc):
        def main(self, ctx):
            (from_alice,) = ctx.initial_links
            yield from ctx.register(GIVE, ADD)
            yield from ctx.open(from_alice)
            inc = yield from ctx.wait_request()
            moved = inc.args[0]
            yield from ctx.reply(inc, ())
            yield from ctx.open(moved)
            inc2 = yield from ctx.wait_request()
            yield from ctx.reply(inc2, (inc2.args[0] + inc2.args[1],))

    cluster = make_cluster("soda", cache_size=0, broadcast_loss=1.0)
    carol = Carol()
    c = cluster.spawn(carol, "carol")
    a = cluster.spawn(Alice(), "alice")
    b = cluster.spawn(Bob(), "bob")
    cluster.create_link(c, a)
    cluster.create_link(a, b)
    cluster.run_until_quiet(max_ms=1e6)
    assert carol.reply == (17,)
    m = cluster.metrics
    assert m.get("soda.freeze.searches") >= 1
    assert m.get("soda.hints_repaired_by_freeze") >= 1
    assert m.get("soda.freeze.frozen") >= 1
    cluster.check()


def test_crash_detected_via_signal():
    """The posted status signal turns the peer's death into a prompt
    RemoteCrash (§4.2)."""

    class Client(Proc):
        def __init__(self):
            self.error = None

        def main(self, ctx):
            (end,) = ctx.initial_links
            try:
                yield from ctx.connect(end, ECHO, (b"x",))
            except LinkDestroyed as e:
                self.error = e

    class Doomed(Proc):
        def main(self, ctx):
            (end,) = ctx.initial_links
            yield from ctx.delay(1e6)

    cluster = make_cluster("soda", broadcast_loss=1.0)
    client = Client()
    d = cluster.spawn(Doomed(), "doomed")
    c = cluster.spawn(client, "client")
    cluster.create_link(d, c)
    cluster.engine.schedule(50.0, cluster.crash_process, "doomed",
                            CrashMode.PROCESSOR)
    cluster.run_until_quiet(max_ms=1e6)
    assert isinstance(client.error, LinkDestroyed)
    assert cluster.processes["client"].finished


def test_orderly_destroy_accepts_pending_with_destroyed_oob():
    class Destroyer(Proc):
        def main(self, ctx):
            (end,) = ctx.initial_links
            yield from ctx.delay(50.0)
            yield from ctx.destroy(end)

    class Victim(Proc):
        def __init__(self):
            self.error = None

        def main(self, ctx):
            (end,) = ctx.initial_links
            try:
                yield from ctx.connect(end, ECHO, (b"x",))
            except LinkDestroyed as e:
                self.error = e

    cluster = make_cluster("soda")
    victim = Victim()
    d = cluster.spawn(Destroyer(), "destroyer")
    v = cluster.spawn(victim, "victim")
    cluster.create_link(d, v)
    cluster.run_until_quiet(max_ms=1e6)
    assert cluster.all_finished
    assert isinstance(victim.error, LinkDestroyed)
    cluster.check()


def test_server_feels_abort_via_zero_accept():
    """§6 item 4 for SODA: the reply put is zero-accepted with OOB
    'aborted' — no acknowledgment messages."""

    class Client(Proc):
        def __init__(self):
            self.aborted = False

        def requester(self, ctx, end):
            try:
                yield from ctx.connect(end, ECHO, (b"x",))
            except ThreadAborted:
                self.aborted = True

        def main(self, ctx):
            (end,) = ctx.initial_links
            t = yield from ctx.fork(self.requester(ctx, end), "req")
            yield from ctx.delay(60.0)  # server consumed it
            yield from ctx.abort(t)
            yield from ctx.delay(300.0)

    class SlowServer(Proc):
        def __init__(self):
            self.error = None

        def main(self, ctx):
            (end,) = ctx.initial_links
            yield from ctx.register(ECHO)
            yield from ctx.open(end)
            inc = yield from ctx.wait_request()
            yield from ctx.delay(150.0)
            try:
                yield from ctx.reply(inc, (inc.args[0],))
            except RequestAborted as e:
                self.error = e

    cluster = make_cluster("soda")
    client, server = Client(), SlowServer()
    s = cluster.spawn(server, "server")
    c = cluster.spawn(client, "client")
    cluster.create_link(s, c)
    cluster.run_until_quiet(max_ms=1e6)
    assert cluster.all_finished
    assert client.aborted
    assert isinstance(server.error, RequestAborted)
    assert cluster.metrics.get("soda.aborted_reply_refusals") == 1
    cluster.check()


def test_abort_before_acceptance_withdraws_put():
    class Alice(Proc):
        def __init__(self):
            self.aborted = False
            self.kept = None

        def requester(self, ctx, end, enc):
            try:
                yield from ctx.connect(end, GIVE, (enc,))
            except ThreadAborted:
                self.aborted = True

        def main(self, ctx):
            (to_bob,) = ctx.initial_links
            mine, theirs = yield from ctx.new_link()
            self.kept = theirs.end_ref
            t = yield from ctx.fork(self.requester(ctx, to_bob, theirs), "req")
            yield from ctx.delay(30.0)  # delivered but never accepted
            yield from ctx.abort(t)

    class DeafBob(Proc):
        def main(self, ctx):
            (end,) = ctx.initial_links
            yield from ctx.delay(200.0)

    cluster = make_cluster("soda")
    alice = Alice()
    a = cluster.spawn(alice, "alice")
    b = cluster.spawn(DeafBob(), "bob")
    cluster.create_link(a, b)
    cluster.run_until_quiet(max_ms=1e6)
    assert cluster.all_finished
    assert alice.aborted
    assert cluster.metrics.get("soda.aborts_withdrawn") == 1
    assert cluster.registry.owner_of(alice.kept) == "alice"
    cluster.check()


def test_pair_limit_deadlock_with_many_links():
    """§4.2.1: "Too small a limit on outstanding requests would leave
    the possibility of deadlock when many links connect the same pair
    of processes." — with limit 2 and 4 links each carrying a request
    plus signals, progress stops."""

    class Server(Proc):
        def __init__(self, nlinks):
            self.nlinks = nlinks
            self.served = 0

        def main(self, ctx):
            ends = ctx.initial_links
            yield from ctx.register(ADD)
            # open only the LAST link; its request is stuck behind the
            # pair limit consumed by requests on the first links
            yield from ctx.open(ends[-1])
            inc = yield from ctx.wait_request()
            self.served += 1
            yield from ctx.reply(inc, (0,))

    class Client(Proc):
        def __init__(self, nlinks):
            self.nlinks = nlinks
            self.done = 0

        def one(self, ctx, end):
            yield from ctx.connect(end, ADD, (1, 1))
            self.done += 1

        def main(self, ctx):
            ends = ctx.initial_links
            for end in ends:
                yield from ctx.fork(self.one(ctx, end), "c")
            yield from ctx.delay(1.0)

    n = 4
    cluster = make_cluster("soda", pair_request_limit=2)
    server, client = Server(n), Client(n)
    s = cluster.spawn(server, "server")
    c = cluster.spawn(client, "client")
    for _ in range(n):
        cluster.create_link(c, s)
    cluster.run_until_quiet(max_ms=3000.0)
    # the one open queue's request never got through: deadlock
    assert server.served == 0
    assert cluster.metrics.get("soda.pair_limit_queued") >= 1

    # with the paper's "half a dozen or so" the same workload completes
    cluster2 = make_cluster("soda", pair_request_limit=12)
    server2, client2 = Server(n), Client(n)
    s2 = cluster2.spawn(server2, "server")
    c2 = cluster2.spawn(client2, "client")
    for _ in range(n):
        cluster2.create_link(c2, s2)
    cluster2.run_until_quiet(max_ms=3000.0)
    assert server2.served == 1
