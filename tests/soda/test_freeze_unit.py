"""Unit tests for the freeze machinery's pure parts."""

import pytest

from repro.core.api import BYTES, Operation, Proc, make_cluster
from repro.soda.freeze import freeze_name_of

ECHO = Operation("echo", (BYTES,), (BYTES,))


def test_freeze_names_deterministic_per_process():
    assert freeze_name_of("p1") == freeze_name_of("p1")
    assert freeze_name_of("p1") != freeze_name_of("p2")


def test_every_process_advertises_its_freeze_name():
    """§4.2: "Every process advertises a freeze name." """
    cluster = make_cluster("soda")

    class Idle(Proc):
        def main(self, ctx):
            yield from ctx.delay(1.0)

    cluster.spawn(Idle(), "a")
    cluster.spawn(Idle(), "b")
    cluster.run(until=0.5)  # started, not yet exited
    for name in ("a", "b"):
        proc = cluster.kernel._procs[name]
        assert freeze_name_of(name) in proc.advertised


def test_any_hint_for_prefers_ownership_then_cache_then_far_hints():
    cluster = make_cluster("soda")

    class Holder(Proc):
        def main(self, ctx):
            a, b = yield from ctx.new_link()
            self.refs = (a.end_ref, b.end_ref)
            yield from ctx.delay(5.0)

    holder = Holder()
    cluster.spawn(holder, "holder")
    cluster.run(until=2.0)
    rt = cluster.processes["holder"].runtime
    fm = rt.freezer
    # the process owns both ends: hints for their names are itself
    a_ref, b_ref = holder.refs
    a_name = rt.sref[a_ref].my_name
    assert fm._any_hint_for(a_name) == "holder"
    # a cache entry answers for a name we no longer own
    rt.cache[99999] = "somewhere-else"
    assert fm._any_hint_for(99999) == "somewhere-else"
    # a far-name we can see points at our hint for it
    far = rt.sref[a_ref].far_name
    assert fm._any_hint_for(far) == "holder"  # far end also ours here
    # unknown name: no hint
    assert fm._any_hint_for(123456789) is None


def test_frozen_process_does_not_run_user_threads():
    """"ceases execution of everything but its own searches" — while
    frozen_count > 0 the dispatcher must not run coroutines."""
    cluster = make_cluster("soda")

    class Ticker(Proc):
        def __init__(self):
            self.ticks = []

        def main(self, ctx):
            for _ in range(6):
                yield from ctx.delay(10.0)
                self.ticks.append((yield from ctx.now()))

    ticker = Ticker()
    cluster.spawn(ticker, "ticker")
    rt = cluster.processes["ticker"].runtime

    def freeze():
        rt.frozen_count += 1

    def unfreeze():
        rt.frozen_count -= 1
        rt._wake()

    cluster.engine.schedule(15.0, freeze)
    cluster.engine.schedule(45.0, unfreeze)
    cluster.run_until_quiet(max_ms=1e4)
    assert len(ticker.ticks) == 6
    # ticks stalled during [15, 45]: the tick due at ~20 happened
    # only after the thaw
    gaps = [b - a for a, b in zip(ticker.ticks, ticker.ticks[1:])]
    assert max(gaps) >= 29.0, ticker.ticks
