"""A minimal loopback kernel for testing the runtime base in isolation.

`FakeCluster`/`FakeRuntime` implement the abstract transport hooks with
a direct in-memory message exchange (constant latency, no screening
complications, no failures except explicit destroy).  It exists so the
semantics encoded in `LynxRuntimeBase` — scheduling, queues, block
points, fairness, moves, aborts — are tested independently of the three
real kernel runtimes, and it documents the minimal contract a kernel
runtime must satisfy.
"""

from __future__ import annotations

from collections import deque
from typing import Dict, Optional

from repro.analysis.costmodel import RuntimeCosts
from repro.core.cluster import ClusterBase, ProcessHandle
from repro.core.links import EndRef, EndState
from repro.core.runtime import LynxRuntimeBase
from repro.core.wire import MsgKind, WireMessage
from repro.sim.failure import CrashMode

#: one-way message latency of the fake transport, ms
FAKE_LATENCY = 1.0

ZERO_COSTS = RuntimeCosts(
    gather_fixed_ms=0.0,
    scatter_fixed_ms=0.0,
    per_byte_ms=0.0,
    dispatch_ms=0.0,
    per_enclosure_ms=0.0,
)


class FakeRuntime(LynxRuntimeBase):
    RUNTIME_NAME = "fake"

    def __init__(self, handle, cluster) -> None:
        super().__init__(handle, cluster)
        #: transport-side request staging, per local end
        self.inbox: Dict[EndRef, deque] = {}

    def runtime_costs(self) -> RuntimeCosts:
        return ZERO_COSTS

    # -- helpers ---------------------------------------------------------
    def _peer_runtime(self, ref: EndRef) -> Optional["FakeRuntime"]:
        return self.cluster.end_owner.get(ref.peer)

    def _inbox(self, ref: EndRef) -> deque:
        return self.inbox.setdefault(ref, deque())

    # -- hook implementations ---------------------------------------------
    def rt_new_link(self):
        link = self.registry.alloc_link(self.name, self.name)
        ref_a, ref_b = EndRef(link, 0), EndRef(link, 1)
        self.cluster.end_owner[ref_a] = self
        self.cluster.end_owner[ref_b] = self
        return ref_a, ref_b
        yield  # pragma: no cover

    def rt_send_request(self, es: EndState, msg: WireMessage):
        self.cluster.metrics.count("fake.requests_sent")
        target_ref = es.ref.peer

        def arrive():
            target = self.cluster.end_owner.get(target_ref)
            if target is None or not target.alive:
                self.notify_destroyed(es.ref, "peer gone", crash=True)
                return
            target._inbox(target_ref).append(msg)
            target._wake()

        self.engine.schedule(FAKE_LATENCY, arrive)
        return
        yield  # pragma: no cover

    def rt_send_reply(self, es: EndState, msg: WireMessage):
        self.cluster.metrics.count("fake.replies_sent")
        target_ref = es.ref.peer

        def arrive():
            target = self.cluster.end_owner.get(target_ref)
            if target is None or not target.alive:
                self.notify_reply_aborted(es.ref, msg.seq)
                return
            tes = target.ends.get(target_ref)
            waiter = tes.find_waiter(msg.reply_to) if tes is not None else None
            if msg.kind in (MsgKind.REPLY, MsgKind.EXCEPTION) and (
                waiter is None or waiter.aborted
            ):
                # the fake transport CAN tell the requester gave up —
                # like SODA/Chrysalis, unlike Charlotte
                self.notify_reply_aborted(es.ref, msg.seq)
                return
            target.deliver_reply(target_ref, msg)
            self.notify_receipt(es.ref, msg.seq)

        self.engine.schedule(FAKE_LATENCY, arrive)
        return
        yield  # pragma: no cover

    def rt_block_wait(self):
        yield self.wakeup_future()

    def rt_request_available(self, es: EndState) -> bool:
        return bool(self.inbox.get(es.ref))

    def rt_take_request(self, es: EndState):
        box = self.inbox.get(es.ref)
        if not box:
            return None
        msg = box.popleft()
        sender = self.cluster.end_owner.get(es.ref.peer)
        if sender is not None:
            sender.notify_receipt(es.ref.peer, msg.seq)
        return msg
        yield  # pragma: no cover

    def rt_destroy(self, es: EndState, reason: str):
        ref = es.ref
        self.cluster.end_owner.pop(ref, None)

        def tell_peer():
            peer = self.cluster.end_owner.get(ref.peer)
            if peer is not None:
                peer.notify_destroyed(ref.peer, reason)

        self.engine.schedule(FAKE_LATENCY, tell_peer)
        return
        yield  # pragma: no cover

    def rt_abort_connect(self, es: EndState, waiter):
        # withdrawn iff the message is still sitting in the peer's
        # transport inbox (not yet received)
        target = self._peer_runtime(es.ref)
        if target is not None:
            box = target.inbox.get(es.ref.peer)
            if box:
                for m in list(box):
                    if m.seq == waiter.seq:
                        box.remove(m)
                        return True
        return False
        yield  # pragma: no cover

    def rt_adopt_end(self, ref: EndRef, meta: dict):
        self.cluster.end_owner[ref] = self
        return
        yield  # pragma: no cover


class FakeCluster(ClusterBase):
    KIND = "fake"

    def _setup_hardware(self) -> None:
        #: global end -> owning runtime routing table (the fake kernel's
        #: omniscient name service)
        self.end_owner: Dict[EndRef, FakeRuntime] = {}

    def make_runtime(self, handle: ProcessHandle) -> FakeRuntime:
        return FakeRuntime(handle, self)

    def create_link(self, a: ProcessHandle, b: ProcessHandle) -> None:
        link = self.registry.alloc_link(a.name, b.name)
        ref_a, ref_b = EndRef(link, 0), EndRef(link, 1)
        a.runtime.preload_end(ref_a)
        b.runtime.preload_end(ref_b)
        self.end_owner[ref_a] = a.runtime
        self.end_owner[ref_b] = b.runtime

    def on_crash(self, handle: ProcessHandle, mode: CrashMode) -> None:
        if mode is CrashMode.PROCESSOR:
            # the fake kernel detects node death and destroys links
            rt = handle.runtime
            for ref in list(rt.ends.keys()):
                self.end_owner.pop(ref, None)
                peer = self.end_owner.get(ref.peer)
                if peer is not None:
                    peer.notify_destroyed(
                        ref.peer, f"{handle.name} node crashed", crash=True
                    )
