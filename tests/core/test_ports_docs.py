"""docs/PORTS.md is a contract: every documented downcall/upcall must
exist in the code, the tables must cover the `KernelRuntimePort`
protocol and the `KernelCapabilities` flags exactly, and the docs that
advertise the registry must actually link it — so the doc cannot drift
from the interface it reifies."""

import dataclasses
import re
from pathlib import Path

from repro.core.ports import KernelCapabilities, KernelRuntimePort

ROOT = Path(__file__).resolve().parents[2]
DOC = ROOT / "docs" / "PORTS.md"
CODE_DIRS = ("src", "tests", "examples", "benchmarks")


def _codebase_blob() -> str:
    chunks = []
    for d in CODE_DIRS:
        for path in (ROOT / d).rglob("*.py"):
            chunks.append(path.read_text())
    return "\n".join(chunks)


def _documented_names() -> set:
    """Backticked tokens from the first column of every table row."""
    names = set()
    for line in DOC.read_text().splitlines():
        if not line.startswith("| `"):
            continue
        first_cell = line.split("|")[1]
        names.update(re.findall(r"`([^`]+)`", first_cell))
    return names


def _port_methods() -> set:
    return {
        name for name in vars(KernelRuntimePort)
        if name.startswith(("rt_", "notify_", "deliver_"))
    }


def test_doc_exists_and_covers_the_port_protocol():
    assert DOC.exists()
    names = _documented_names()
    missing = _port_methods() - names
    assert not missing, f"port methods missing from the doc: {missing}"


def test_doc_covers_every_capability_flag():
    names = _documented_names()
    for f in dataclasses.fields(KernelCapabilities):
        assert f.name in names, f"capability {f.name!r} missing from doc"


def test_every_documented_name_appears_in_codebase():
    blob = _codebase_blob()
    missing = [n for n in sorted(_documented_names()) if n not in blob]
    assert not missing, f"documented but absent from the code: {missing}"


def test_doc_states_the_registry_and_ideal_backend():
    text = DOC.read_text()
    assert "KernelProfile" in text
    assert "registered_kernels" in text
    assert "ideal" in text
    assert "lower bound" in text


def test_doc_is_linked_from_readme_and_api():
    assert "PORTS.md" in (ROOT / "README.md").read_text()
    assert "PORTS.md" in (ROOT / "docs" / "API.md").read_text()
