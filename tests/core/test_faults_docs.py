"""docs/FAULTS.md is a contract: every documented knob/counter must
exist in the code, every ``faults.*`` / ``recovery.*`` counter the
code emits must be documented, and the `RecoveryPolicy` / `FaultSpec`
dataclass fields must be covered — so the doc cannot drift from the
fault plane it describes."""

import dataclasses
import re
from pathlib import Path

from repro.core.recovery import RecoveryPolicy
from repro.sim.faults import FaultPlan, FaultSpec

ROOT = Path(__file__).resolve().parents[2]
DOC = ROOT / "docs" / "FAULTS.md"
CODE_DIRS = ("src", "tests", "examples", "benchmarks")


def _codebase_blob() -> str:
    chunks = []
    for d in CODE_DIRS:
        for path in (ROOT / d).rglob("*.py"):
            chunks.append(path.read_text())
    return "\n".join(chunks)


def _documented_names() -> set:
    """Backticked tokens from the first column of every table row."""
    names = set()
    for line in DOC.read_text().splitlines():
        if not line.startswith("| `"):
            continue
        first_cell = line.split("|")[1]
        names.update(re.findall(r"`([^`]+)`", first_cell))
    return names


def _emitted_counters() -> set:
    """Every faults.*/recovery.* metric name src/ actually emits."""
    pattern = re.compile(r'"((?:faults|recovery)\.[a-z_]+)"')
    names = set()
    for path in (ROOT / "src").rglob("*.py"):
        names.update(pattern.findall(path.read_text()))
    return names


def test_doc_exists_and_covers_every_emitted_counter():
    assert DOC.exists()
    documented = _documented_names()
    missing = _emitted_counters() - documented
    assert not missing, f"counters missing from the doc: {missing}"


def test_doc_covers_the_policy_and_spec_fields():
    names = _documented_names()
    for f in dataclasses.fields(RecoveryPolicy):
        assert f.name in names, f"policy knob {f.name!r} missing from doc"
    text = DOC.read_text()
    for f in dataclasses.fields(FaultSpec):
        assert f"`{f.name}`" in text, f"fault rate {f.name!r} missing"
    for builder in ("drop", "duplicate", "delay", "partition"):
        assert hasattr(FaultPlan, builder)
        assert builder in names, f"plan builder {builder!r} missing"


def test_every_documented_name_appears_in_codebase():
    blob = _codebase_blob()
    strip = re.compile(r"[^\w.]")  # `drop(0.5, link=3)` -> symbol only
    missing = []
    for n in sorted(_documented_names()):
        symbol = strip.split(n)[0]
        if symbol and symbol not in blob:
            missing.append(n)
    assert not missing, f"documented but absent from the code: {missing}"


def test_doc_states_the_placement_split_and_the_bench():
    text = DOC.read_text()
    assert "recovery_placement" in text
    assert "RecoveryExhausted" in text
    assert "kernel_retransmit" in text
    assert "E14" in text
    assert "PORTS.md" in text  # the capability flag's home


def test_doc_is_linked_from_readme_and_api():
    assert "FAULTS.md" in (ROOT / "README.md").read_text()
    assert "FAULTS.md" in (ROOT / "docs" / "API.md").read_text()
