"""The context helpers must produce exactly the documented ops."""

import pytest

from repro.core import ops as _ops
from repro.core.context import LynxContext
from repro.core.links import EndRef, LinkEnd
from repro.core.types import BYTES, Operation


class _StubRuntime:
    initial_links = [LinkEnd(EndRef(1, 0), "stub")]
    name = "stub"


ECHO = Operation("echo", (BYTES,), (BYTES,))


@pytest.fixture
def ctx():
    return LynxContext(_StubRuntime())


def first_yield(gen):
    return next(gen)


def test_connect_builds_connect_op(ctx):
    end = LinkEnd(EndRef(2, 1))
    op = first_yield(ctx.connect(end, ECHO, (b"x",)))
    assert isinstance(op, _ops.ConnectOp)
    assert op.end is end and op.op is ECHO and op.args == (b"x",)


def test_open_close_destroy(ctx):
    end = LinkEnd(EndRef(2, 1))
    assert isinstance(first_yield(ctx.open(end)), _ops.OpenOp)
    assert isinstance(first_yield(ctx.close(end)), _ops.CloseOp)
    assert isinstance(first_yield(ctx.destroy(end)), _ops.DestroyOp)


def test_wait_request_filter_tuple(ctx):
    e1, e2 = LinkEnd(EndRef(1, 0)), LinkEnd(EndRef(2, 0))
    op = first_yield(ctx.wait_request([e1, e2]))
    assert isinstance(op, _ops.WaitRequestOp)
    assert op.ends == (e1, e2)
    op2 = first_yield(ctx.wait_request())
    assert op2.ends is None


def test_register_yields_one_op_per_operation(ctx):
    other = Operation("other", (), ())
    ops = list(ctx.register(ECHO, other))
    assert [o.operation for o in ops] == [ECHO, other]
    assert all(isinstance(o, _ops.RegisterOp) for o in ops)


def test_delay_vs_compute(ctx):
    d = first_yield(ctx.delay(5.0))
    c = first_yield(ctx.compute(5.0))
    assert isinstance(d, _ops.DelayOp) and d.ms == 5.0
    assert isinstance(c, _ops.ComputeOp) and c.ms == 5.0
    assert type(d) is not type(c)


def test_initial_links_is_a_tuple_snapshot(ctx):
    links = ctx.initial_links
    assert isinstance(links, tuple) and len(links) == 1
    assert ctx.name == "stub"


def test_fork_and_abort(ctx):
    def child():
        yield

    gen = child()
    f = first_yield(ctx.fork(gen, "kid"))
    assert isinstance(f, _ops.ForkOp) and f.gen is gen and f.name == "kid"

    from repro.core.threads import LynxThread

    t = LynxThread(child(), "t")
    a = first_yield(ctx.abort(t))
    assert isinstance(a, _ops.AbortThreadOp) and a.thread is t
