"""Tests for the entry-style server layer (core.entries)."""

import pytest

from repro.core.api import BYTES, INT, LinkDestroyed, Operation, Proc, STR
from repro.core.entries import call, serve
from tests.core.fakes import FakeCluster

GET = Operation("get", (STR,), (INT,))
PUT = Operation("put", (STR, INT), ())
SLOW = Operation("slow", (INT,), (INT,))


def run_pair(server, client, extra=()):
    cluster = FakeCluster()
    s = cluster.spawn(server, "server")
    c = cluster.spawn(client, "client")
    cluster.create_link(s, c)
    for p in extra:
        h = cluster.spawn(p, p.__class__.__name__.lower())
        cluster.create_link(s, h)
    cluster.run_until_quiet(max_ms=1e6)
    return cluster


def test_plain_callable_entries_auto_reply():
    class KV(Proc):
        def __init__(self):
            self.table = {"x": 7}
            self.served = 0

        def main(self, ctx):
            self.served = yield from serve(
                ctx,
                ctx.initial_links,
                {
                    GET: lambda key: (self.table.get(key, -1),),
                    PUT: self._put,
                },
                count=3,
            )

        def _put(self, key, value):
            self.table[key] = value
            # returning None means an empty reply

    class Client(Proc):
        def __init__(self):
            self.got = []

        def main(self, ctx):
            (end,) = ctx.initial_links
            self.got.append((yield from call(ctx, end, GET, "x")))
            yield from call(ctx, end, PUT, "y", 42)
            self.got.append((yield from call(ctx, end, GET, "y")))

    kv, client = KV(), Client()
    cluster = run_pair(kv, client)
    assert cluster.all_finished
    assert client.got == [7, 42]
    assert kv.served == 3
    cluster.check()


def test_coroutine_entries_overlap():
    """Two slow entries forked as coroutines serve concurrently: the
    second, faster request finishes first."""

    class Server(Proc):
        def __init__(self):
            self.done_order = []

        def slow_entry(self, ctx, inc):
            (ms,) = inc.args
            yield from ctx.delay(float(ms))
            self.done_order.append(ms)
            yield from ctx.reply(inc, (ms,))

        def main(self, ctx):
            yield from serve(
                ctx, ctx.initial_links, {SLOW: self.slow_entry}, count=2
            )

    class Client(Proc):
        def one(self, ctx, end, ms):
            yield from call(ctx, end, SLOW, ms)

        def main(self, ctx):
            (end,) = ctx.initial_links
            yield from ctx.fork(self.one(ctx, end, 500))
            yield from ctx.fork(self.one(ctx, end, 50))

    server, client = Server(), Client()
    cluster = run_pair(server, client)
    assert cluster.all_finished, cluster.unfinished()
    assert server.done_order == [50, 500]
    cluster.check()


def test_serve_returns_when_links_die():
    class Server(Proc):
        def __init__(self):
            self.served = None

        def main(self, ctx):
            self.served = yield from serve(
                ctx, ctx.initial_links, {GET: lambda k: (1,)}
            )

    class Client(Proc):
        def main(self, ctx):
            (end,) = ctx.initial_links
            yield from call(ctx, end, GET, "a")
            yield from call(ctx, end, GET, "b")
            # exit: our termination destroys the link, ending serve()

    server = Server()
    cluster = run_pair(server, Client())
    assert cluster.all_finished
    assert server.served == 2
    cluster.check()


def test_serve_across_multiple_links():
    class Server(Proc):
        def main(self, ctx):
            yield from serve(
                ctx, ctx.initial_links, {GET: lambda k: (len(k),)}, count=2
            )

    class ClientA(Proc):
        def __init__(self):
            self.got = None

        def main(self, ctx):
            (end,) = ctx.initial_links
            self.got = yield from call(ctx, end, GET, "aa")

    class ClientB(ClientA):
        def main(self, ctx):
            (end,) = ctx.initial_links
            self.got = yield from call(ctx, end, GET, "bbbb")

    server = Server()
    a, b = ClientA(), ClientB()
    cluster = FakeCluster()
    s = cluster.spawn(server, "server")
    ca = cluster.spawn(a, "ca")
    cb = cluster.spawn(b, "cb")
    cluster.create_link(s, ca)
    cluster.create_link(s, cb)
    cluster.run_until_quiet(max_ms=1e6)
    assert cluster.all_finished
    assert a.got == 2 and b.got == 4
    cluster.check()


def test_call_returns_tuple_for_multi_result_ops():
    PAIR = Operation("pair", (INT,), (INT, INT))

    class Server(Proc):
        def main(self, ctx):
            yield from serve(ctx, ctx.initial_links,
                             {PAIR: lambda x: (x, x * 2)}, count=1)

    class Client(Proc):
        def __init__(self):
            self.got = None

        def main(self, ctx):
            (end,) = ctx.initial_links
            self.got = yield from call(ctx, end, PAIR, 3)

    client = Client()
    cluster = run_pair(Server(), client)
    assert client.got == (3, 6)
