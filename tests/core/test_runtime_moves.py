"""Link-moving and abort semantics of the runtime base (fake kernel).

These pin the §2.1 rules: enclosing ends moves them, the far end is
oblivious, moves are forbidden with unreceived messages or owed
replies, and aborted connects restore or lose enclosures depending on
whether the transport could withdraw the message.
"""

import pytest

from repro.core.api import (
    BYTES,
    INT,
    LINK,
    LinkMoved,
    MoveRestricted,
    Operation,
    Proc,
    RequestAborted,
    ThreadAborted,
)
from repro.core.registry import EndDisposition
from tests.core.fakes import FakeCluster

ECHO = Operation("echo", (BYTES,), (BYTES,))
GIVE = Operation("give", (LINK,), ())
GIVE2 = Operation("give2", (LINK, LINK), ())
ADD = Operation("add", (INT, INT), (INT,))


def test_enclosed_end_moves_to_receiver():
    """A sends B one end of a fresh link; B can then serve traffic on
    it while A uses the retained end."""

    class Alice(Proc):
        def __init__(self):
            self.reply = None

        def main(self, ctx):
            (to_bob,) = ctx.initial_links
            a_end, b_end = yield from ctx.new_link()
            yield from ctx.connect(to_bob, GIVE, (b_end,))
            self.reply = yield from ctx.connect(a_end, ADD, (1, 2))

    class Bob(Proc):
        def main(self, ctx):
            (from_alice,) = ctx.initial_links
            yield from ctx.register(GIVE, ADD)
            yield from ctx.open(from_alice)
            inc = yield from ctx.wait_request()
            moved_end = inc.args[0]
            yield from ctx.reply(inc, ())
            yield from ctx.open(moved_end)
            inc2 = yield from ctx.wait_request()
            yield from ctx.reply(inc2, (inc2.args[0] + inc2.args[1],))

    alice = Alice()
    cluster = FakeCluster()
    a = cluster.spawn(alice, "alice")
    b = cluster.spawn(Bob(), "bob")
    cluster.create_link(a, b)
    cluster.run_until_quiet()
    assert cluster.all_finished
    assert alice.reply == (3,)
    cluster.check()


def test_sender_loses_moved_end():
    class Alice(Proc):
        def __init__(self):
            self.error = None

        def main(self, ctx):
            (to_bob,) = ctx.initial_links
            a_end, b_end = yield from ctx.new_link()
            yield from ctx.connect(to_bob, GIVE, (b_end,))
            try:
                yield from ctx.connect(b_end, ADD, (1, 2))  # moved away!
            except LinkMoved as e:
                self.error = e

    class Bob(Proc):
        def main(self, ctx):
            (from_alice,) = ctx.initial_links
            yield from ctx.register(GIVE)
            yield from ctx.open(from_alice)
            inc = yield from ctx.wait_request()
            yield from ctx.reply(inc, ())

    alice = Alice()
    cluster = FakeCluster()
    a = cluster.spawn(alice, "alice")
    b = cluster.spawn(Bob(), "bob")
    cluster.create_link(a, b)
    cluster.run_until_quiet()
    assert isinstance(alice.error, LinkMoved)


def test_cannot_enclose_end_of_transport_link():
    """§2.2: never "enclose an end on itself"."""

    class Alice(Proc):
        def __init__(self):
            self.error = None

        def main(self, ctx):
            (to_bob,) = ctx.initial_links
            try:
                yield from ctx.connect(to_bob, GIVE, (to_bob,))
            except MoveRestricted as e:
                self.error = e

    alice = Alice()
    cluster = FakeCluster()
    a = cluster.spawn(alice, "alice")
    b = cluster.spawn(_IdleProc(), "bob")
    cluster.create_link(a, b)
    cluster.run_until_quiet()
    assert isinstance(alice.error, MoveRestricted)


class _IdleProc(Proc):
    def main(self, ctx):
        if False:
            yield


def test_cannot_move_end_with_owed_reply():
    """§2.1: a process may not move a link on which it owes a reply."""

    class Server(Proc):
        def __init__(self):
            self.error = None

        def main(self, ctx):
            serve_end, give_end = ctx.initial_links
            yield from ctx.register(ADD, GIVE)
            yield from ctx.open(serve_end)
            inc = yield from ctx.wait_request()
            # owes a reply on serve_end now; try to move it
            try:
                yield from ctx.connect(give_end, GIVE, (serve_end,))
            except MoveRestricted as e:
                self.error = e
            yield from ctx.reply(inc, (0,))

    class Client(Proc):
        def main(self, ctx):
            (end,) = ctx.initial_links
            yield from ctx.connect(end, ADD, (1, 1))

    class Sink(Proc):
        def main(self, ctx):
            (end,) = ctx.initial_links
            yield from ctx.register(GIVE)
            yield from ctx.open(end)
            # nothing should ever arrive; exit after a while
            yield from ctx.delay(1000.0)

    server = Server()
    cluster = FakeCluster()
    s = cluster.spawn(server, "server")
    c = cluster.spawn(Client(), "client")
    k = cluster.spawn(Sink(), "sink")
    cluster.create_link(s, c)   # serve_end
    cluster.create_link(s, k)   # give_end
    cluster.run_until_quiet()
    assert isinstance(server.error, MoveRestricted)
    cluster.check()


def test_multiple_enclosures_in_one_message():
    class Alice(Proc):
        def __init__(self):
            self.replies = []

        def main(self, ctx):
            (to_bob,) = ctx.initial_links
            keep = []
            give = []
            for _ in range(2):
                mine, theirs = yield from ctx.new_link()
                keep.append(mine)
                give.append(theirs)
            yield from ctx.connect(to_bob, GIVE2, tuple(give))
            for mine in keep:
                r = yield from ctx.connect(mine, ADD, (5, 6))
                self.replies.append(r[0])

    class Bob(Proc):
        def main(self, ctx):
            (from_alice,) = ctx.initial_links
            yield from ctx.register(GIVE2, ADD)
            yield from ctx.open(from_alice)
            inc = yield from ctx.wait_request()
            e1, e2 = inc.args
            yield from ctx.reply(inc, ())
            yield from ctx.open(e1)
            yield from ctx.open(e2)
            for _ in range(2):
                r = yield from ctx.wait_request()
                yield from ctx.reply(r, (r.args[0] + r.args[1],))

    alice = Alice()
    cluster = FakeCluster()
    a = cluster.spawn(alice, "alice")
    b = cluster.spawn(Bob(), "bob")
    cluster.create_link(a, b)
    cluster.run_until_quiet()
    assert alice.replies == [11, 11]
    cluster.check()


def test_registry_tracks_adoption():
    cluster = FakeCluster()

    class Alice(Proc):
        def main(self, ctx):
            (to_bob,) = ctx.initial_links
            a_end, b_end = yield from ctx.new_link()
            self.kept_ref = a_end.end_ref
            self.given_ref = b_end.end_ref
            yield from ctx.connect(to_bob, GIVE, (b_end,))

    class Bob(Proc):
        def main(self, ctx):
            (from_alice,) = ctx.initial_links
            yield from ctx.register(GIVE)
            yield from ctx.open(from_alice)
            inc = yield from ctx.wait_request()
            yield from ctx.reply(inc, ())

    alice = Alice()
    a = cluster.spawn(alice, "alice")
    b = cluster.spawn(Bob(), "bob")
    cluster.create_link(a, b)
    cluster.run_until_quiet()
    assert cluster.registry.owner_of(alice.given_ref) == "bob"
    assert cluster.registry.disposition_of(alice.given_ref) is EndDisposition.OWNED


def test_abort_of_blocked_connect_before_receipt_restores_enclosure():
    """The request never reached the server (its queue stays closed);
    aborting the connecting coroutine withdraws it and the enclosed end
    is usable again."""

    class Alice(Proc):
        def __init__(self):
            self.thread_error = None
            self.end_ok = None

        def requester(self, ctx, to_bob, enc):
            try:
                yield from ctx.connect(to_bob, GIVE, (enc,))
            except ThreadAborted as e:
                self.thread_error = e

        def main(self, ctx):
            (to_bob,) = ctx.initial_links
            mine, theirs = yield from ctx.new_link()
            self.given_ref = theirs.end_ref
            t = yield from ctx.fork(self.requester(ctx, to_bob, theirs), "req")
            yield from ctx.delay(2.0)  # the request reached Bob's node
            yield from ctx.abort(t)
            yield from ctx.delay(10.0)
            # the enclosed end must be ours again (movable => owned)
            try:
                yield from ctx.connect(theirs, ADD, (0, 0))
            except Exception as e:  # noqa: BLE001 - LinkMoved would mean loss
                self.end_ok = type(e).__name__
            else:
                self.end_ok = "usable"

    class DeafBob(Proc):
        def main(self, ctx):
            (end,) = ctx.initial_links  # noqa: F841 - queue never opened
            yield from ctx.delay(500.0)

    alice = Alice()
    cluster = FakeCluster()
    a = cluster.spawn(alice, "alice")
    b = cluster.spawn(DeafBob(), "bob")
    cluster.create_link(a, b)
    cluster.run_until_quiet()
    assert isinstance(alice.thread_error, ThreadAborted)
    # connecting on the restored end blocks forever (both ends are
    # Alice's; 'theirs' peer is 'mine' whose queue is closed) — so we
    # only check it did not raise LinkMoved *immediately*; to keep the
    # test terminating, accept either usable-but-blocked or usable.
    assert alice.end_ok in (None, "usable")
    # ...and the registry agrees the end never left Alice
    assert (
        cluster.registry.disposition_of(alice.given_ref) is EndDisposition.OWNED
    )


def test_server_feels_request_aborted_on_late_reply():
    """Client aborts after the server received the request; when the
    server replies, it feels `RequestAborted` (the fake transport is
    SODA/Chrysalis-grade here; Charlotte's inability is tested in the
    Charlotte suite)."""

    class Client(Proc):
        def __init__(self):
            self.aborted = False

        def requester(self, ctx, end):
            try:
                yield from ctx.connect(end, ECHO, (b"x",))
            except ThreadAborted:
                self.aborted = True

        def main(self, ctx):
            (end,) = ctx.initial_links
            t = yield from ctx.fork(self.requester(ctx, end), "req")
            yield from ctx.delay(100.0)  # server has received by now
            yield from ctx.abort(t)
            yield from ctx.delay(500.0)

    class SlowServer(Proc):
        def __init__(self):
            self.error = None

        def main(self, ctx):
            (end,) = ctx.initial_links
            yield from ctx.register(ECHO)
            yield from ctx.open(end)
            inc = yield from ctx.wait_request()
            yield from ctx.delay(200.0)  # client aborts meanwhile
            try:
                yield from ctx.reply(inc, (inc.args[0],))
            except RequestAborted as e:
                self.error = e

    client, server = Client(), SlowServer()
    cluster = FakeCluster()
    s = cluster.spawn(server, "server")
    c = cluster.spawn(client, "client")
    cluster.create_link(s, c)
    cluster.run_until_quiet()
    assert client.aborted
    assert isinstance(server.error, RequestAborted)
    cluster.check()
