"""Unit tests for the LYNX type system."""

import pytest

from repro.core.exceptions import TypeClash
from repro.core.links import EndRef, LinkEnd
from repro.core.types import (
    ArrayType,
    BOOL,
    BYTES,
    INT,
    LINK,
    Operation,
    REAL,
    RecordType,
    STR,
    check_args,
)


def test_scalar_checks_accept_correct_values():
    INT.check(42)
    INT.check(-(2**63))
    REAL.check(3.14)
    BOOL.check(True)
    STR.check("hi")
    BYTES.check(b"raw")
    BYTES.check(bytearray(b"raw"))
    LINK.check(LinkEnd(EndRef(1, 0)))


@pytest.mark.parametrize(
    "typ,bad",
    [
        (INT, 3.14),
        (INT, True),  # bool is not INT
        (INT, 2**63),  # out of range
        (REAL, 7),
        (BOOL, 1),
        (STR, b"bytes"),
        (BYTES, "str"),
        (LINK, 42),
    ],
)
def test_scalar_checks_reject_wrong_values(typ, bad):
    with pytest.raises(TypeClash):
        typ.check(bad)


def test_array_type_checks_elements():
    t = ArrayType(INT)
    t.check([1, 2, 3])
    t.check(())
    with pytest.raises(TypeClash):
        t.check([1, "x"])
    with pytest.raises(TypeClash):
        t.check(5)


def test_record_type_checks_fields():
    t = RecordType("point", [("x", INT), ("y", INT)])
    t.check({"x": 1, "y": 2})
    with pytest.raises(TypeClash):
        t.check({"x": 1})  # missing field
    with pytest.raises(TypeClash):
        t.check({"x": 1, "y": 2, "z": 3})  # extra field
    with pytest.raises(TypeClash):
        t.check({"x": 1, "y": "two"})


def test_structural_equality_and_hash():
    a = RecordType("p", [("x", INT)])
    b = RecordType("p", [("x", INT)])
    c = RecordType("p", [("x", REAL)])
    assert a == b and hash(a) == hash(b)
    assert a != c
    assert ArrayType(INT) == ArrayType(INT)
    assert ArrayType(INT) != ArrayType(STR)


def test_contains_link_propagates():
    assert LINK.contains_link()
    assert not INT.contains_link()
    assert ArrayType(LINK).contains_link()
    assert not ArrayType(INT).contains_link()
    assert RecordType("r", [("a", INT), ("l", LINK)]).contains_link()
    assert not RecordType("r", [("a", INT)]).contains_link()


def test_check_args_arity():
    with pytest.raises(TypeClash):
        check_args((INT, STR), (1,))
    check_args((INT, STR), (1, "a"))


def test_operation_signature_and_hash_stability():
    op1 = Operation("get", (STR,), (BYTES, INT))
    op2 = Operation("get", (STR,), (BYTES, INT))
    assert op1.signature == "get(s)->(y,i)"
    assert op1.sighash == op2.sighash
    assert op1 == op2


def test_operation_hash_distinguishes_signatures():
    base = Operation("get", (STR,), (BYTES,))
    assert base.sighash != Operation("put", (STR,), (BYTES,)).sighash
    assert base.sighash != Operation("get", (INT,), (BYTES,)).sighash
    assert base.sighash != Operation("get", (STR,), (STR,)).sighash


def test_operation_check_request_and_reply():
    op = Operation("sum", (INT, INT), (INT,))
    op.check_request((1, 2))
    op.check_reply((3,))
    with pytest.raises(TypeClash):
        op.check_request((1, "x"))
    with pytest.raises(TypeClash):
        op.check_reply((1, 2))
