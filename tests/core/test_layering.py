"""Layering guard for the reified kernel/runtime interface.

The point of `repro.core.ports` is that every layer above the kernel
packages — `core.api`, the CLI, workloads, benches, observability,
analysis — reaches a backend only through the registry.  This test
makes the rule mechanical: no module under ``src/repro`` may import
``repro.charlotte`` / ``repro.soda`` / ``repro.chrysalis`` /
``repro.ideal`` internals *at module level* unless it is either

* inside that kernel's own package, or
* per-kernel glue whose filename declares the kernel it binds
  (``repro/linda/soda_adapter.py`` may import ``repro.soda``).

Function-level lazy imports (the registry's factories, the raw
baselines) are the sanctioned escape hatch and are not flagged —
they run only after a profile lookup has chosen the backend.
"""

import ast
from pathlib import Path

from repro.core.ports import registered_kernels

SRC = Path(__file__).resolve().parents[2] / "src" / "repro"


def _module_level_imports(tree: ast.Module):
    """Top-level Import/ImportFrom nodes, including ones nested in
    module-level ``if``/``try`` blocks (e.g. TYPE_CHECKING guards are
    module-level too — typing-only cycles still count as layering)."""
    todo = list(tree.body)
    while todo:
        node = todo.pop()
        if isinstance(node, (ast.Import, ast.ImportFrom)):
            yield node
        elif isinstance(node, (ast.If, ast.Try)):
            todo.extend(ast.iter_child_nodes(node))


def _imported_kernel(node, kernels):
    names = []
    if isinstance(node, ast.ImportFrom):
        names = [node.module or ""]
    else:
        names = [alias.name for alias in node.names]
    for name in names:
        parts = name.split(".")
        if len(parts) >= 2 and parts[0] == "repro" and parts[1] in kernels:
            return parts[1]
    return None


def test_no_module_level_kernel_imports_outside_kernel_packages():
    kernels = set(registered_kernels())
    violations = []
    for path in sorted(SRC.rglob("*.py")):
        rel = path.relative_to(SRC)
        if rel.parts[0] in kernels:
            continue  # the kernel's own package
        tree = ast.parse(path.read_text())
        for node in _module_level_imports(tree):
            kernel = _imported_kernel(node, kernels)
            if kernel is None:
                continue
            if kernel in path.stem:
                continue  # declared per-kernel glue (e.g. soda_adapter)
            violations.append(f"{rel}:{node.lineno} imports repro.{kernel}")
    assert not violations, (
        "modules must reach kernels via repro.core.ports, not direct "
        "module-level imports:\n" + "\n".join(violations)
    )


def test_type_checking_guard_is_not_an_escape_hatch():
    """The walker above must see inside `if TYPE_CHECKING:` blocks."""
    tree = ast.parse(
        "from typing import TYPE_CHECKING\n"
        "if TYPE_CHECKING:\n"
        "    from repro.soda.kernel import SodaKernel\n"
    )
    found = [n for n in _module_level_imports(tree)
             if _imported_kernel(n, {"soda"})]
    assert found
