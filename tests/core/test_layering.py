"""Layering guard for the reified kernel/runtime interface.

The point of `repro.core.ports` is that every layer above the kernel
packages — `core.api`, the CLI, workloads, benches, observability,
analysis — reaches a backend only through the registry.  The rule
itself now lives in the lint pass (`repro.analysis.lint` rule LAY001,
also enforced by CI via ``python -m repro lint``); this test pins the
tree to it and keeps the rule's own contract honest, with no AST
walker of its own.
"""

from pathlib import Path

from repro.analysis.lint import ModuleInfo, get_rule
from repro.analysis.lint.core import lint_modules

REPO = Path(__file__).resolve().parents[2]
SRC = REPO / "src" / "repro"


def _lay001(paths, root=None):
    modules = [ModuleInfo.parse(p, root=root) for p in paths]
    return lint_modules(modules, rules=[get_rule("LAY001")])


def test_no_module_level_kernel_imports_outside_kernel_packages():
    result = _lay001(sorted(SRC.rglob("*.py")), root=REPO)
    assert not result.active, (
        "modules must reach kernels via repro.core.ports, not direct "
        "module-level imports:\n"
        + "\n".join(f.location() for f in result.active)
    )


def test_type_checking_guard_is_not_an_escape_hatch(tmp_path):
    """LAY001 must see inside `if TYPE_CHECKING:` blocks — a
    typing-only cycle still counts as layering."""
    mod = tmp_path / "guard.py"
    mod.write_text(
        "from typing import TYPE_CHECKING\n"
        "if TYPE_CHECKING:\n"
        "    from repro.soda.kernel import SodaKernel\n"
    )
    result = _lay001([mod])
    assert result.fired() == {"LAY001"}
    assert result.findings[0].line == 3
