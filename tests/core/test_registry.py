"""Unit tests for the logical link registry (the test oracle)."""

import pytest

from repro.core.links import EndRef
from repro.core.registry import EndDisposition, LinkRegistry


def test_alloc_assigns_owners_and_increments_ids():
    r = LinkRegistry()
    l1 = r.alloc_link("a", "b")
    l2 = r.alloc_link("c", "c")
    assert l1 != l2
    assert r.owner_of(EndRef(l1, 0)) == "a"
    assert r.owner_of(EndRef(l1, 1)) == "b"
    assert r.owner_of(EndRef(l2, 0)) == "c"


def test_move_lifecycle_transitions():
    r = LinkRegistry()
    link = r.alloc_link("a", "b")
    ref = EndRef(link, 1)
    r.record_in_transit(ref, "b")
    assert r.disposition_of(ref) is EndDisposition.IN_TRANSIT
    assert r.owner_of(ref) is None
    r.record_adopted(ref, "c")
    assert r.disposition_of(ref) is EndDisposition.OWNED
    assert r.owner_of(ref) == "c"


def test_bounce_restores_owner():
    r = LinkRegistry()
    link = r.alloc_link("a", "b")
    ref = EndRef(link, 0)
    r.record_in_transit(ref, "a")
    r.record_bounced(ref, "a")
    assert r.owner_of(ref) == "a"
    assert r.disposition_of(ref) is EndDisposition.OWNED


def test_lost_ends_tracked():
    r = LinkRegistry()
    link = r.alloc_link("a", "b")
    ref = EndRef(link, 1)
    r.record_in_transit(ref, "b")
    r.record_lost(ref)
    assert r.lost_ends() == [ref]
    assert r.disposition_of(ref) is EndDisposition.LOST


def test_destroy_idempotent_and_reason_kept():
    r = LinkRegistry()
    link = r.alloc_link("a", "b")
    r.record_destroyed(link, "first")
    r.record_destroyed(link, "second")
    assert r.is_destroyed(link)
    assert r.links[link].destroy_reason == "first"
    assert r.live_links() == []


def test_invariants_catch_ownerless_owned_end():
    r = LinkRegistry()
    link = r.alloc_link("a", "b")
    rec = r.links[link].ends[0]
    rec.owner = None  # corrupt deliberately
    problems = r.check_invariants()
    assert problems and "owned by nobody" in problems[0]


def test_log_records_transitions_in_order():
    r = LinkRegistry()
    link = r.alloc_link("a", "b")
    ref = EndRef(link, 0)
    r.record_in_transit(ref, "a")
    r.record_adopted(ref, "b")
    kinds = [k for k, _ in r.log]
    assert kinds == ["new", "transit", "adopt"]
