"""The runtime recovery layer (`repro.core.recovery` + the wiring in
`LynxRuntimeBase`): policy arithmetic, the retry/exhaustion paths on a
runtime-placement backend, duplicate suppression, and the
kernel-placement contrast on Charlotte (docs/FAULTS.md)."""

import pytest

from repro.core.api import (
    BYTES,
    Operation,
    Proc,
    RecoveryExhausted,
    RecoveryPolicy,
    make_cluster,
)
from repro.core.exceptions import LynxError
from repro.sim.faults import FaultPlan
from repro.sim.rng import SimRandom

ECHO = Operation("echo", (BYTES,), (BYTES,))


# policy arithmetic -----------------------------------------------------


def test_backoff_doubles_from_the_timeout():
    p = RecoveryPolicy(timeout_ms=50.0, max_retries=3, backoff_factor=2.0)
    assert p.backoff_ms(1) == 100.0
    assert p.backoff_ms(2) == 200.0
    assert p.backoff_ms(3) == 400.0


def test_budget_is_timeout_plus_every_backoff_leg():
    p = RecoveryPolicy(timeout_ms=50.0, max_retries=3, backoff_factor=2.0)
    assert p.budget_ms() == 50.0 + 100.0 + 200.0 + 400.0
    assert RecoveryPolicy(timeout_ms=30.0, max_retries=0).budget_ms() == 30.0


def test_jitter_is_bounded_and_seeded():
    p = RecoveryPolicy(timeout_ms=50.0, max_retries=2,
                       backoff_factor=2.0, jitter_frac=0.1)
    rng = SimRandom(3)
    draws = [p.backoff_ms(1, rng) for _ in range(50)]
    assert all(90.0 <= d <= 110.0 for d in draws)
    assert len(set(draws)) > 1  # actually jittered
    assert [p.backoff_ms(1, SimRandom(3)) for _ in range(5)] == \
           [p.backoff_ms(1, SimRandom(3)) for _ in range(5)]


def test_policy_is_frozen():
    p = RecoveryPolicy()
    with pytest.raises(Exception):
        p.timeout_ms = 1.0


# runtime behaviour -----------------------------------------------------


POLICY = RecoveryPolicy(timeout_ms=40.0, max_retries=2,
                        backoff_factor=2.0, jitter_frac=0.0)


class Server(Proc):
    def __init__(self):
        self.served = 0

    def main(self, ctx):
        (end,) = ctx.initial_links
        yield from ctx.register(ECHO)
        yield from ctx.open(end)
        while True:
            try:
                inc = yield from ctx.wait_request((end,))
                yield from ctx.reply(inc, (inc.args[0],))
            except LynxError:
                return
            self.served += 1


class OneShotClient(Proc):
    def __init__(self):
        self.reply = None
        self.error = None
        self.elapsed = None

    def main(self, ctx):
        (end,) = ctx.initial_links
        t0 = yield from ctx.now()
        try:
            (self.reply,) = yield from ctx.connect(end, ECHO, (b"x",))
        except RecoveryExhausted as e:
            self.error = e
        self.elapsed = (yield from ctx.now()) - t0
        try:
            yield from ctx.destroy(end)
        except LynxError:
            pass


def _run(kind, plan, policy=POLICY, seed=0):
    cluster = make_cluster(kind, seed=seed)
    cluster.install_faults(plan)
    if policy is not None:
        cluster.install_recovery(policy)
    client = OneShotClient()
    server = Server()
    c = cluster.spawn(client, "client")
    s = cluster.spawn(server, "server")
    cluster.create_link(c, s)
    cluster.run_until_quiet(max_ms=1e6)
    assert cluster.all_finished, cluster.unfinished()
    cluster.check()
    return cluster, client, server


def test_one_retry_masks_a_transient_partition():
    """The first request dies in a short partition window; the retry
    after the first timeout sails through.  The application only sees
    a slower round trip."""
    plan = FaultPlan().partition(0.0, 30.0)  # heals before the timeout
    cluster, client, server = _run("ideal", plan)
    assert client.error is None
    assert client.reply == b"x"
    assert server.served == 1
    assert cluster.metrics.get("recovery.timeouts") == 1
    assert cluster.metrics.get("recovery.retries") == 1
    assert cluster.metrics.get("recovery.exhausted") == 0
    assert cluster.metrics.get("faults.partition_dropped") == 1
    # the round trip paid roughly one timeout of penalty
    assert client.elapsed >= POLICY.timeout_ms


def test_unreachable_peer_exhausts_the_budget():
    plan = FaultPlan().partition(0.0, 1e6)  # never heals
    cluster, client, server = _run("ideal", plan)
    assert isinstance(client.error, RecoveryExhausted)
    assert client.reply is None
    assert server.served == 0
    assert cluster.metrics.get("recovery.exhausted") == 1
    assert cluster.metrics.get("recovery.retries") == POLICY.max_retries
    # jitter_frac=0: the unwind lands exactly at the policy budget
    assert client.elapsed == pytest.approx(POLICY.budget_ms(), abs=1.0)
    # the typed error says what ran out
    assert "retries" in str(client.error)


def test_duplicates_are_suppressed_not_reexecuted():
    plan = FaultPlan().duplicate(1.0)  # every message delivered twice
    cluster, client, server = _run("ideal", plan)
    assert client.error is None
    assert client.reply == b"x"
    assert server.served == 1  # executed once, however many copies
    assert cluster.metrics.get("faults.duplicated") >= 1
    assert cluster.metrics.get("recovery.duplicates_dropped") >= 1


def test_kernel_placement_retransmits_invisibly():
    """Charlotte under the same transient partition: no runtime
    counters move at all — the kernel retransmits until the window
    heals and the client never learns anything happened."""
    plan = FaultPlan().partition(0.0, 60.0)
    cluster, client, server = _run("charlotte", plan)
    assert client.error is None
    assert client.reply == b"x"
    assert server.served == 1
    assert cluster.metrics.get("faults.kernel_retransmits") >= 1
    assert cluster.metrics.total("recovery.") == 0
    # the blocked connect outwaited the window instead of retrying
    assert client.elapsed >= 60.0


def test_without_a_policy_runtime_backends_just_wait():
    """Faults installed but no policy: a runtime-placement backend has
    nothing to recover with — the lost request hangs the client, which
    is the pre-recovery behaviour, preserved."""
    plan = FaultPlan().partition(0.0, 1e7)
    cluster = make_cluster("ideal", seed=0)
    cluster.install_faults(plan)
    client = OneShotClient()
    c = cluster.spawn(client, "client")
    s = cluster.spawn(Server(), "server")
    cluster.create_link(c, s)
    cluster.run_until_quiet(max_ms=1e5)
    assert "client" in cluster.unfinished()
    assert cluster.metrics.get("faults.messages_lost") == 1
    assert cluster.metrics.total("recovery.") == 0
