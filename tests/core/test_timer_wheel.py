"""`repro.core.recovery.TimerWheel`: unit semantics of the batched
timer buckets, and — the load-bearing guarantee — end-to-end
equivalence with the old one-engine-event-per-timer scheme under
seeded fault plans.  The wheel is a pure scheduling-cost optimization;
if any simulated outcome shifts, it stopped being one."""

import pytest

from repro.core.recovery import RecoveryPolicy, TimerWheel
from repro.sim.engine import Engine, EngineError
from repro.workloads.chaos import (
    chaos_policy,
    lossy_plan,
    partitioned_plan,
    run_chaos_workload,
)

RUNTIME_PLACEMENT_KINDS = ("soda", "chrysalis", "ideal")


# ----------------------------------------------------------------------
# unit: bucket batching, firing order, cancellation
# ----------------------------------------------------------------------
def test_same_deadline_timers_share_one_engine_event():
    eng = Engine()
    wheel = TimerWheel(eng)
    fired = []
    for i in range(5):
        wheel.schedule(10.0, fired.append, i)
    assert wheel.pending == 5
    assert eng.pending == 1  # the batch, not five heap entries
    eng.run()
    assert fired == [0, 1, 2, 3, 4]  # insertion order == (time, seq)
    assert wheel.pending == 0


def test_distinct_deadlines_fire_in_time_order():
    eng = Engine()
    wheel = TimerWheel(eng)
    fired = []
    wheel.schedule(20.0, fired.append, "late")
    wheel.schedule(10.0, fired.append, "early")
    eng.run()
    assert fired == ["early", "late"]
    assert eng.now == 20.0


def test_cancel_is_o1_and_idempotent():
    eng = Engine()
    wheel = TimerWheel(eng)
    fired = []
    keep = wheel.schedule(5.0, fired.append, "keep")
    drop = wheel.schedule(5.0, fired.append, "drop")
    drop.cancel()
    drop.cancel()
    assert wheel.pending == 1
    eng.run()
    assert fired == ["keep"]
    assert keep.cancelled  # spent after firing


def test_cancelling_whole_bucket_releases_the_engine_event():
    eng = Engine()
    wheel = TimerWheel(eng)
    handles = [wheel.schedule(5.0, lambda: None) for _ in range(3)]
    for h in handles:
        h.cancel()
    assert wheel.pending == 0
    assert eng.pending == 0  # the shared event was tombstoned
    assert eng.run() == 0


def test_callback_may_rearm_at_the_same_instant():
    eng = Engine()
    wheel = TimerWheel(eng)
    fired = []

    def first():
        fired.append("first")
        wheel.schedule(0.0, fired.append, "rearmed")

    wheel.schedule(5.0, first)
    eng.run()
    assert fired == ["first", "rearmed"]


def test_callback_may_cancel_a_sibling_in_the_same_bucket():
    eng = Engine()
    wheel = TimerWheel(eng)
    fired = []
    handles = {}

    def killer():
        fired.append("killer")
        handles["victim"].cancel()

    wheel.schedule(5.0, killer)
    handles["victim"] = wheel.schedule(5.0, fired.append, "victim")
    eng.run()
    assert fired == ["killer"]


def test_negative_delay_raises_like_the_engine():
    wheel = TimerWheel(Engine())
    with pytest.raises(EngineError):
        wheel.schedule(-1.0, lambda: None)
    with pytest.raises(EngineError):
        TimerWheel(Engine(), passthrough=True).schedule(-1.0, lambda: None)


def test_passthrough_mode_returns_raw_engine_events():
    eng = Engine()
    wheel = TimerWheel(eng, passthrough=True)
    fired = []
    for i in range(3):
        wheel.schedule(10.0, fired.append, i)
    assert eng.pending == 3  # one heap entry per timer: old behavior
    eng.run()
    assert fired == [0, 1, 2]


# ----------------------------------------------------------------------
# equivalence: wheel vs per-timer heap pushes under seeded fault plans
# ----------------------------------------------------------------------
def _passthrough_wheels(monkeypatch):
    """Make every runtime arm its recovery timers the pre-wheel way."""
    import repro.core.runtime as runtime_mod

    monkeypatch.setattr(
        runtime_mod, "TimerWheel",
        lambda engine: TimerWheel(engine, passthrough=True),
    )


def _outcome(result):
    return (
        result.completed,
        result.failed,
        result.failed_over,
        result.rtts,
        result.elapsed_ms,
        result.counters,
    )


@pytest.mark.parametrize("kind", RUNTIME_PLACEMENT_KINDS)
def test_partition_outcome_identical_with_and_without_wheel(
    kind, monkeypatch
):
    kw = dict(count=12, seed=7, plan=partitioned_plan(quick=True),
              policy=chaos_policy())
    wheel = run_chaos_workload(kind, **kw)
    _passthrough_wheels(monkeypatch)
    heap = run_chaos_workload(kind, **kw)
    assert _outcome(wheel) == _outcome(heap)


@pytest.mark.parametrize("seed", (0, 3))
def test_lossy_outcome_identical_with_and_without_wheel(
    seed, monkeypatch
):
    kw = dict(count=10, seed=seed, plan=lossy_plan(),
              policy=RecoveryPolicy(timeout_ms=25.0, max_retries=4,
                                    backoff_factor=2.0, jitter_frac=0.1))
    wheel = run_chaos_workload("soda", **kw)
    _passthrough_wheels(monkeypatch)
    heap = run_chaos_workload("soda", **kw)
    assert _outcome(wheel) == _outcome(heap)
