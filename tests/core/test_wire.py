"""Unit tests for the wire-message layer."""

import pytest

from repro.core.links import EndRef
from repro.core.wire import (
    ENCLOSURE_REF_BYTES,
    HEADER_BYTES,
    ExceptionCode,
    MsgKind,
    WireMessage,
)


def test_wire_size_accounts_header_name_payload_enclosures():
    msg = WireMessage(
        kind=MsgKind.REQUEST,
        seq=1,
        opname="lookup",
        payload=b"x" * 100,
        enclosures=[EndRef(1, 0), EndRef(2, 1)],
    )
    assert msg.wire_size == HEADER_BYTES + 6 + 100 + 2 * ENCLOSURE_REF_BYTES


def test_empty_message_has_header_only():
    msg = WireMessage(kind=MsgKind.ALLOW)
    assert msg.wire_size == HEADER_BYTES


def test_clone_for_resend_is_deep_enough():
    msg = WireMessage(
        kind=MsgKind.REQUEST,
        seq=3,
        opname="op",
        payload=b"data",
        enclosures=[EndRef(5, 0)],
        enclosure_meta=[{"obj": 9}],
        enc_total=1,
        error=ExceptionCode.TYPE_CLASH,
        sent_at=1.5,
    )
    clone = msg.clone_for_resend()
    assert clone is not msg
    assert clone.kind is msg.kind
    assert clone.seq == msg.seq
    assert clone.payload == msg.payload
    assert clone.enclosures == msg.enclosures
    assert clone.enclosures is not msg.enclosures
    assert clone.enclosure_meta == msg.enclosure_meta
    assert clone.enclosure_meta is not msg.enclosure_meta
    clone.enclosures.append(EndRef(6, 0))
    assert len(msg.enclosures) == 1


def test_kind_vocabulary_matches_the_paper():
    """§3.2.1/§3.2.2's message vocabulary, nothing more."""
    assert {k.value for k in MsgKind} == {
        "request", "reply", "exception",
        "retry", "forbid", "allow",       # §3.2.1
        "goahead", "enc",                  # §3.2.2
        "ack",                             # the rejected design (E7)
    }
