"""LYNX runtime-base semantics, tested over the loopback fake kernel.

These tests pin down the language behaviour of §2/§2.1 independently of
any real kernel: RPC, queue control, FIFO order, coroutines and mutual
exclusion, stop-and-wait blocking, destruction exceptions, process-exit
link destruction.
"""

import pytest

from repro.core.api import (
    BYTES,
    INT,
    LinkDestroyed,
    Operation,
    Proc,
    RemoteCrash,
    STR,
    TypeClash,
)
from repro.sim.failure import CrashMode
from tests.core.fakes import FakeCluster

ECHO = Operation("echo", (BYTES,), (BYTES,))
ADD = Operation("add", (INT, INT), (INT,))


class EchoServer(Proc):
    def __init__(self, count=1):
        self.count = count
        self.served = 0

    def main(self, ctx):
        (end,) = ctx.initial_links
        yield from ctx.register(ECHO, ADD)
        yield from ctx.open(end)
        for _ in range(self.count):
            inc = yield from ctx.wait_request()
            if inc.op.name == "echo":
                yield from ctx.reply(inc, (inc.args[0],))
            else:
                yield from ctx.reply(inc, (inc.args[0] + inc.args[1],))
            self.served += 1


class OneShotClient(Proc):
    def __init__(self, op, args):
        self.op = op
        self.args = args
        self.reply = None

    def main(self, ctx):
        (end,) = ctx.initial_links
        self.reply = yield from ctx.connect(end, self.op, self.args)


def rpc_pair(server, client):
    cluster = FakeCluster()
    s = cluster.spawn(server, "server")
    c = cluster.spawn(client, "client")
    cluster.create_link(s, c)
    cluster.run_until_quiet()
    return cluster


def test_simple_rpc_roundtrip():
    server = EchoServer()
    client = OneShotClient(ECHO, (b"hello",))
    cluster = rpc_pair(server, client)
    assert cluster.all_finished
    assert client.reply == (b"hello",)
    assert server.served == 1
    cluster.check()


def test_rpc_with_computation():
    client = OneShotClient(ADD, (20, 22))
    cluster = rpc_pair(EchoServer(), client)
    assert client.reply == (42,)
    cluster.check()


def test_sequential_rpcs_fifo_order():
    class SeqClient(Proc):
        def __init__(self):
            self.replies = []

        def main(self, ctx):
            (end,) = ctx.initial_links
            for i in range(5):
                r = yield from ctx.connect(end, ADD, (i, 100))
                self.replies.append(r[0])

    client = SeqClient()
    cluster = rpc_pair(EchoServer(count=5), client)
    assert client.replies == [100, 101, 102, 103, 104]
    cluster.check()


def test_type_clash_unknown_operation():
    UNKNOWN = Operation("mystery", (INT,), (INT,))

    class Client(Proc):
        def __init__(self):
            self.error = None

        def main(self, ctx):
            (end,) = ctx.initial_links
            try:
                yield from ctx.connect(end, UNKNOWN, (1,))
            except TypeClash as e:
                self.error = e

    client = Client()
    cluster = rpc_pair(EchoServer(), client)
    assert isinstance(client.error, TypeClash)
    cluster.check()


def test_type_clash_signature_mismatch():
    # same name as the server's "echo" but different signature
    BAD_ECHO = Operation("echo", (STR,), (STR,))

    class Client(Proc):
        def __init__(self):
            self.error = None

        def main(self, ctx):
            (end,) = ctx.initial_links
            try:
                yield from ctx.connect(end, BAD_ECHO, ("s",))
            except TypeClash as e:
                self.error = e

    client = Client()
    cluster = rpc_pair(EchoServer(), client)
    assert isinstance(client.error, TypeClash)
    cluster.check()


def test_closed_queue_delays_requests():
    """The server opens its queue only after a long delay; the client's
    connect must not complete before that."""

    class LazyServer(Proc):
        def __init__(self):
            self.opened_at = None

        def main(self, ctx):
            (end,) = ctx.initial_links
            yield from ctx.register(ECHO)
            yield from ctx.delay(500.0)
            self.opened_at = yield from ctx.now()
            yield from ctx.open(end)
            inc = yield from ctx.wait_request()
            yield from ctx.reply(inc, (inc.args[0],))

    class TimedClient(Proc):
        def __init__(self):
            self.done_at = None

        def main(self, ctx):
            (end,) = ctx.initial_links
            yield from ctx.connect(end, ECHO, (b"x",))
            self.done_at = yield from ctx.now()

    server, client = LazyServer(), TimedClient()
    cluster = rpc_pair(server, client)
    assert cluster.all_finished
    assert client.done_at > server.opened_at >= 500.0
    cluster.check()


def test_fork_creates_concurrent_coroutines():
    class ForkingClient(Proc):
        def __init__(self):
            self.replies = []

        def worker(self, ctx, end, i):
            r = yield from ctx.connect(end, ADD, (i, 0))
            self.replies.append(r[0])

        def main(self, ctx):
            (end,) = ctx.initial_links
            for i in range(3):
                yield from ctx.fork(self.worker(ctx, end, i), f"w{i}")

    client = ForkingClient()
    cluster = rpc_pair(EchoServer(count=3), client)
    assert sorted(client.replies) == [0, 1, 2]
    cluster.check()


def test_threads_execute_in_mutual_exclusion():
    """Two threads increment a shared counter with a read-modify-write
    around a yield-free region; mutual exclusion means no interleaving
    corrupts it, while a block point in the middle would."""

    class Racer(Proc):
        def __init__(self):
            self.counter = 0
            self.trace = []

        def bump(self, ctx, tag):
            for _ in range(5):
                v = self.counter
                self.trace.append((tag, "r", v))
                self.counter = v + 1
                self.trace.append((tag, "w", v + 1))
                yield from ctx.delay(1.0)  # block point between iterations

        def main(self, ctx):
            yield from ctx.fork(self.bump(ctx, "a"))
            yield from ctx.fork(self.bump(ctx, "b"))

    p = Racer()
    cluster = FakeCluster()
    cluster.spawn(p, "racer")
    cluster.run_until_quiet()
    assert p.counter == 10
    # within one thread's read-write pair, no other thread intervened
    for i in range(0, len(p.trace), 2):
        r, w = p.trace[i], p.trace[i + 1]
        assert r[0] == w[0] and w[2] == r[2] + 1
    cluster.check()


def test_destroy_raises_on_peer():
    class Destroyer(Proc):
        def main(self, ctx):
            (end,) = ctx.initial_links
            yield from ctx.delay(10.0)
            yield from ctx.destroy(end)

    class Victim(Proc):
        def __init__(self):
            self.error = None

        def main(self, ctx):
            (end,) = ctx.initial_links
            try:
                yield from ctx.connect(end, ECHO, (b"x",))
            except LinkDestroyed as e:
                self.error = e

    victim = Victim()
    cluster = FakeCluster()
    d = cluster.spawn(Destroyer(), "destroyer")
    v = cluster.spawn(victim, "victim")
    cluster.create_link(d, v)
    cluster.run_until_quiet()
    assert isinstance(victim.error, LinkDestroyed)
    cluster.check()


def test_use_after_destroy_raises_locally():
    class P(Proc):
        def __init__(self):
            self.error = None

        def main(self, ctx):
            a, b = yield from ctx.new_link()
            yield from ctx.destroy(a)
            try:
                yield from ctx.connect(b, ECHO, (b"x",))
            except LinkDestroyed as e:
                self.error = e

    p = P()
    cluster = FakeCluster()
    cluster.spawn(p, "p")
    cluster.run_until_quiet()
    # destroying one end kills the link; using the *other* end fails too
    assert isinstance(p.error, LinkDestroyed)
    cluster.check()


def test_process_exit_destroys_its_links():
    """§2.2: termination of a process destroys all its links."""

    class ShortLived(Proc):
        def main(self, ctx):
            yield from ctx.delay(1.0)

    class Watcher(Proc):
        def __init__(self):
            self.error = None

        def main(self, ctx):
            (end,) = ctx.initial_links
            yield from ctx.delay(50.0)  # let the peer exit first
            try:
                yield from ctx.connect(end, ECHO, (b"x",))
            except LinkDestroyed as e:
                self.error = e

    watcher = Watcher()
    cluster = FakeCluster()
    s = cluster.spawn(ShortLived(), "short")
    w = cluster.spawn(watcher, "watcher")
    cluster.create_link(s, w)
    cluster.run_until_quiet()
    assert isinstance(watcher.error, LinkDestroyed)
    cluster.check()


def test_crash_surfaces_as_remote_crash():
    class Server(EchoServer):
        pass

    class Client(Proc):
        def __init__(self):
            self.error = None

        def main(self, ctx):
            (end,) = ctx.initial_links
            try:
                yield from ctx.connect(end, ECHO, (b"x",))
            except LinkDestroyed as e:  # RemoteCrash subclasses it
                self.error = e

    class Hang(Proc):
        def main(self, ctx):
            (end,) = ctx.initial_links  # noqa: F841 - never serves
            yield from ctx.delay(1e6)

    client = Client()
    cluster = FakeCluster()
    h = cluster.spawn(Hang(), "hang")
    c = cluster.spawn(client, "client")
    cluster.create_link(h, c)
    cluster.engine.schedule(100.0, cluster.crash_process, "hang", CrashMode.PROCESSOR)
    cluster.run_until_quiet()
    assert isinstance(client.error, RemoteCrash)


def test_wait_request_filter_restricts_queues():
    class TwoLinkServer(Proc):
        def __init__(self):
            self.first_from = None

        def main(self, ctx):
            end1, end2 = ctx.initial_links
            yield from ctx.register(ADD)
            yield from ctx.open(end1)
            yield from ctx.open(end2)
            # serve only end2 first, despite end1 traffic arriving sooner
            inc = yield from ctx.wait_request([end2])
            self.first_from = inc.end.end_ref
            yield from ctx.reply(inc, (inc.args[0] + inc.args[1],))
            inc = yield from ctx.wait_request()
            yield from ctx.reply(inc, (inc.args[0] + inc.args[1],))

    class DelayedClient(Proc):
        def __init__(self, delay):
            self.delay_ms = delay
            self.reply = None

        def main(self, ctx):
            (end,) = ctx.initial_links
            yield from ctx.delay(self.delay_ms)
            self.reply = yield from ctx.connect(end, ADD, (1, 2))

    server = TwoLinkServer()
    fast, slow = DelayedClient(0.0), DelayedClient(200.0)
    cluster = FakeCluster()
    s = cluster.spawn(server, "server")
    f = cluster.spawn(fast, "fast")
    sl = cluster.spawn(slow, "slow")
    cluster.create_link(s, f)  # end1 <-> fast
    cluster.create_link(s, sl)  # end2 <-> slow
    cluster.run_until_quiet()
    assert cluster.all_finished
    # the filtered wait served the slow client's link first
    assert server.first_from.link == 2
    assert fast.reply == (3,) and slow.reply == (3,)
    cluster.check()


def test_new_link_local_rpc():
    """Both ends of a fresh link can live in one process; the process
    can talk to itself through it (two coroutines)."""

    class SelfTalker(Proc):
        def __init__(self):
            self.reply = None

        def server_side(self, ctx, end):
            yield from ctx.open(end)
            inc = yield from ctx.wait_request()
            yield from ctx.reply(inc, (inc.args[0] + inc.args[1],))

        def main(self, ctx):
            a, b = yield from ctx.new_link()
            yield from ctx.register(ADD)
            yield from ctx.fork(self.server_side(ctx, a), "srv")
            self.reply = yield from ctx.connect(b, ADD, (2, 3))

    p = SelfTalker()
    cluster = FakeCluster()
    cluster.spawn(p, "p")
    cluster.run_until_quiet()
    assert p.reply == (5,)
    cluster.check()
