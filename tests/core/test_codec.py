"""Unit tests for marshalling/unmarshalling."""

import pytest

from repro.core import codec
from repro.core.exceptions import ProtocolViolation, TypeClash
from repro.core.links import EndRef, LinkEnd
from repro.core.types import (
    ArrayType,
    BOOL,
    BYTES,
    INT,
    LINK,
    Operation,
    REAL,
    RecordType,
    STR,
)


def roundtrip(types, values):
    payload, encs = codec.marshal(types, values)
    return codec.unmarshal(types, payload, encs, lambda ref: LinkEnd(ref))


def test_scalar_roundtrip():
    types = (INT, REAL, BOOL, STR, BYTES)
    values = (-42, 2.5, True, "héllo", b"\x00\xffdata")
    assert roundtrip(types, values) == values


def test_empty_roundtrip():
    payload, encs = codec.marshal((), ())
    assert payload == b"" and encs == []
    assert codec.unmarshal((), b"", [], lambda r: r) == ()


def test_array_and_record_roundtrip():
    t = (
        ArrayType(INT),
        RecordType("kv", [("k", STR), ("v", ArrayType(BYTES))]),
    )
    v = ([1, 2, 3], {"k": "key", "v": [b"a", b"bb"]})
    out = roundtrip(t, v)
    assert out[0] == [1, 2, 3]
    assert out[1] == {"k": "key", "v": [b"a", b"bb"]}


def test_links_are_extracted_in_payload_order():
    t = (LINK, INT, LINK)
    e1, e2 = LinkEnd(EndRef(5, 0)), LinkEnd(EndRef(9, 1))
    payload, encs = codec.marshal(t, (e1, 7, e2))
    assert encs == [EndRef(5, 0), EndRef(9, 1)]
    out = codec.unmarshal(t, payload, encs, lambda ref: ("adopted", ref))
    assert out == (("adopted", EndRef(5, 0)), 7, ("adopted", EndRef(9, 1)))


def test_links_nested_in_arrays_and_records():
    t = (ArrayType(LINK), RecordType("r", [("l", LINK), ("n", INT)]))
    ends = [LinkEnd(EndRef(i, 0)) for i in range(3)]
    payload, encs = codec.marshal(t, ([ends[0], ends[1]], {"l": ends[2], "n": 1}))
    assert encs == [EndRef(0, 0), EndRef(1, 0), EndRef(2, 0)]
    out = codec.unmarshal(t, payload, encs, lambda ref: ref)
    assert out[0] == [EndRef(0, 0), EndRef(1, 0)]
    assert out[1] == {"l": EndRef(2, 0), "n": 1}


def test_payload_bytes_are_reasonable():
    payload, _ = codec.marshal((BYTES,), (b"x" * 1000,))
    # 4-byte length prefix + body
    assert len(payload) == 1004
    payload, _ = codec.marshal((INT, INT), (1, 2))
    assert len(payload) == 16


def test_trailing_garbage_detected():
    payload, encs = codec.marshal((INT,), (1,))
    with pytest.raises(ProtocolViolation):
        codec.unmarshal((INT,), payload + b"\x00", encs, lambda r: r)


def test_enclosure_index_out_of_range_detected():
    payload, encs = codec.marshal((LINK,), (LinkEnd(EndRef(1, 0)),))
    with pytest.raises(ProtocolViolation):
        codec.unmarshal((LINK,), payload, [], lambda r: r)


def test_request_payload_type_checks():
    op = Operation("f", (INT,), ())
    with pytest.raises(TypeClash):
        codec.request_payload(op, ("not an int",))
    payload, encs = codec.request_payload(op, (3,))
    assert len(payload) == 8 and encs == []


def test_reply_payload_type_checks():
    op = Operation("f", (), (STR,))
    with pytest.raises(TypeClash):
        codec.reply_payload(op, (42,))
    payload, _ = codec.reply_payload(op, ("ok",))
    assert payload.endswith(b"ok")


def test_unicode_string_roundtrip_length():
    s = "ünïcödé-文字"
    (out,) = roundtrip((STR,), (s,))
    assert out == s


# ----------------------------------------------------------------------
# lazy decoding (`lazy_unmarshal` / `LazyValues`)
# ----------------------------------------------------------------------
def lazy_roundtrip(types, values):
    payload, encs = codec.marshal(types, values)
    return codec.lazy_unmarshal(types, payload, encs, lambda ref: LinkEnd(ref))


def test_lazy_values_quack_like_the_eager_tuple():
    types = (INT, REAL, BOOL, STR, BYTES)
    values = (-42, 2.5, True, "héllo", b"\x00\xffdata")
    lazy = lazy_roundtrip(types, values)
    assert len(lazy) == 5          # from the signature, no decode
    assert not lazy.decoded
    assert lazy == values          # == forces
    assert lazy.decoded
    assert tuple(lazy) == values
    assert lazy[0] == -42 and lazy[-1] == values[-1]
    a, b, c, d, e = lazy           # unpacking
    assert (a, b, c, d, e) == values


def test_body_never_touched_is_never_decoded():
    lazy = lazy_roundtrip((INT, STR), (7, "ignored"))
    assert len(lazy) == 2
    assert not lazy.decoded        # len() alone must not force the walk
    repr(lazy)
    assert not lazy.decoded        # neither may repr()


def test_malformed_body_raises_at_access_not_receive():
    payload, encs = codec.marshal((INT,), (1,))
    lazy = codec.lazy_unmarshal(
        (INT,), payload + b"\x00", encs, lambda r: r
    )  # corrupt trailing byte: receive-time construction must not raise
    assert not lazy.decoded
    with pytest.raises(ProtocolViolation):
        lazy[0]


def test_lazy_decode_runs_once_and_caches():
    calls = []

    def factory(ref):
        calls.append(ref)
        return LinkEnd(ref)

    payload, encs = codec.marshal((LINK, INT), (LinkEnd(EndRef(5, 0)), 3))
    lazy = codec.lazy_unmarshal((LINK, INT), payload, encs, factory)
    # adoption is eager (end movement is a protocol obligation) ...
    assert calls == [EndRef(5, 0)]
    # ... the body walk is not, and runs exactly once
    first = lazy[0]
    assert lazy[0] is first
    assert lazy[1] == 3 and calls == [EndRef(5, 0)]


def test_lazy_equals_lazy_and_rejects_mismatch():
    a = lazy_roundtrip((INT, INT), (1, 2))
    b = lazy_roundtrip((INT, INT), (1, 2))
    c = lazy_roundtrip((INT, INT), (1, 9))
    assert a == b
    assert a != c
    assert a != "not a sequence"


def test_receive_paths_decode_lazily_end_to_end(monkeypatch):
    """An RPC whose client ignores the reply decodes each request body
    exactly once (at the server's ``inc.args`` access) and the reply
    body never — the hot-path win docs/PERFORMANCE.md measures."""
    from repro.core.api import BYTES, Operation, Proc
    from tests.core.fakes import FakeCluster

    ECHO = Operation("echo", (BYTES,), (BYTES,))
    decodes = []
    real = codec._decode_all

    def counting(types, payload, handles):
        decodes.append(types)
        return real(types, payload, handles)

    monkeypatch.setattr(codec, "_decode_all", counting)

    class Server(Proc):
        def main(self, ctx):
            (end,) = ctx.initial_links
            yield from ctx.register(ECHO)
            yield from ctx.open(end)
            for _ in range(3):
                inc = yield from ctx.wait_request()
                yield from ctx.reply(inc, (inc.args[0],))

    class FireAndForgetClient(Proc):
        def main(self, ctx):
            (end,) = ctx.initial_links
            for _ in range(3):
                yield from ctx.connect(end, ECHO, (b"payload",))
                # the reply values are never read

    cluster = FakeCluster()
    s = cluster.spawn(Server(), "server")
    c = cluster.spawn(FireAndForgetClient(), "client")
    cluster.create_link(s, c)
    cluster.run_until_quiet()
    # 3 request bodies forced by the server; 0 of the 3 reply bodies
    assert len(decodes) == 3
    assert all(t == ECHO.request for t in decodes)
