"""Unit tests for marshalling/unmarshalling."""

import pytest

from repro.core import codec
from repro.core.exceptions import ProtocolViolation, TypeClash
from repro.core.links import EndRef, LinkEnd
from repro.core.types import (
    ArrayType,
    BOOL,
    BYTES,
    INT,
    LINK,
    Operation,
    REAL,
    RecordType,
    STR,
)


def roundtrip(types, values):
    payload, encs = codec.marshal(types, values)
    return codec.unmarshal(types, payload, encs, lambda ref: LinkEnd(ref))


def test_scalar_roundtrip():
    types = (INT, REAL, BOOL, STR, BYTES)
    values = (-42, 2.5, True, "héllo", b"\x00\xffdata")
    assert roundtrip(types, values) == values


def test_empty_roundtrip():
    payload, encs = codec.marshal((), ())
    assert payload == b"" and encs == []
    assert codec.unmarshal((), b"", [], lambda r: r) == ()


def test_array_and_record_roundtrip():
    t = (
        ArrayType(INT),
        RecordType("kv", [("k", STR), ("v", ArrayType(BYTES))]),
    )
    v = ([1, 2, 3], {"k": "key", "v": [b"a", b"bb"]})
    out = roundtrip(t, v)
    assert out[0] == [1, 2, 3]
    assert out[1] == {"k": "key", "v": [b"a", b"bb"]}


def test_links_are_extracted_in_payload_order():
    t = (LINK, INT, LINK)
    e1, e2 = LinkEnd(EndRef(5, 0)), LinkEnd(EndRef(9, 1))
    payload, encs = codec.marshal(t, (e1, 7, e2))
    assert encs == [EndRef(5, 0), EndRef(9, 1)]
    out = codec.unmarshal(t, payload, encs, lambda ref: ("adopted", ref))
    assert out == (("adopted", EndRef(5, 0)), 7, ("adopted", EndRef(9, 1)))


def test_links_nested_in_arrays_and_records():
    t = (ArrayType(LINK), RecordType("r", [("l", LINK), ("n", INT)]))
    ends = [LinkEnd(EndRef(i, 0)) for i in range(3)]
    payload, encs = codec.marshal(t, ([ends[0], ends[1]], {"l": ends[2], "n": 1}))
    assert encs == [EndRef(0, 0), EndRef(1, 0), EndRef(2, 0)]
    out = codec.unmarshal(t, payload, encs, lambda ref: ref)
    assert out[0] == [EndRef(0, 0), EndRef(1, 0)]
    assert out[1] == {"l": EndRef(2, 0), "n": 1}


def test_payload_bytes_are_reasonable():
    payload, _ = codec.marshal((BYTES,), (b"x" * 1000,))
    # 4-byte length prefix + body
    assert len(payload) == 1004
    payload, _ = codec.marshal((INT, INT), (1, 2))
    assert len(payload) == 16


def test_trailing_garbage_detected():
    payload, encs = codec.marshal((INT,), (1,))
    with pytest.raises(ProtocolViolation):
        codec.unmarshal((INT,), payload + b"\x00", encs, lambda r: r)


def test_enclosure_index_out_of_range_detected():
    payload, encs = codec.marshal((LINK,), (LinkEnd(EndRef(1, 0)),))
    with pytest.raises(ProtocolViolation):
        codec.unmarshal((LINK,), payload, [], lambda r: r)


def test_request_payload_type_checks():
    op = Operation("f", (INT,), ())
    with pytest.raises(TypeClash):
        codec.request_payload(op, ("not an int",))
    payload, encs = codec.request_payload(op, (3,))
    assert len(payload) == 8 and encs == []


def test_reply_payload_type_checks():
    op = Operation("f", (), (STR,))
    with pytest.raises(TypeClash):
        codec.reply_payload(op, (42,))
    payload, _ = codec.reply_payload(op, ("ok",))
    assert payload.endswith(b"ok")


def test_unicode_string_roundtrip_length():
    s = "ünïcödé-文字"
    (out,) = roundtrip((STR,), (s,))
    assert out == s
