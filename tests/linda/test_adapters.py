"""The mini-Linda adapters, cross-kernel: identical semantics, very
different transports."""

import pytest

from repro.linda import ANY, make_linda
from repro.sim.tasks import sleep

KINDS = ("soda", "chrysalis", "charlotte")


def finish(system, max_ms=1e6):
    system.run_until_quiet(max_ms=max_ms)
    assert system.all_finished
    system.check()


@pytest.mark.parametrize("kind", KINDS)
def test_out_then_take(kind):
    system = make_linda(kind)
    got = []

    def producer(c):
        yield from c.out(("k", 42))
        yield from c.close()

    def consumer(c):
        got.append((yield from c.take(("k", ANY))))
        yield from c.close()

    system.spawn(producer(system.client("p")))
    system.spawn(consumer(system.client("c")))
    finish(system)
    assert got == [("k", 42)]


@pytest.mark.parametrize("kind", KINDS)
def test_blocking_take_wakes_on_later_out(kind):
    system = make_linda(kind)
    got = []
    times = {}

    def consumer(c):
        t0 = system.engine.now
        got.append((yield from c.take(("late", ANY))))
        times["waited"] = system.engine.now - t0
        yield from c.close()

    def producer(c):
        yield sleep(system.engine, 200.0)
        yield from c.out(("late", "now"))
        yield from c.close()

    system.spawn(consumer(system.client("c")))
    system.spawn(producer(system.client("p")))
    finish(system)
    assert got == [("late", "now")]
    assert times["waited"] >= 200.0
    assert system.metrics.get("linda.blocked_waiters") >= 1


@pytest.mark.parametrize("kind", KINDS)
def test_read_does_not_consume(kind):
    system = make_linda(kind)
    got = []

    def producer(c):
        yield from c.out(("datum", 7))
        yield from c.close()

    def reader(c):
        got.append((yield from c.read(("datum", int))))
        got.append((yield from c.read(("datum", int))))
        got.append((yield from c.take(("datum", int))))
        yield from c.close()

    system.spawn(producer(system.client("p")))
    system.spawn(reader(system.client("r")))
    finish(system)
    assert got == [("datum", 7)] * 3


@pytest.mark.parametrize("kind", KINDS)
def test_take_is_exclusive_between_competitors(kind):
    """Two blocked takers, one tuple: exactly one gets it; a second
    out releases the other."""
    system = make_linda(kind)
    got = []

    def taker(c, tag):
        tup = yield from c.take(("job", ANY))
        got.append((tag, tup))
        yield from c.close()

    def producer(c):
        yield sleep(system.engine, 100.0)
        yield from c.out(("job", 1))
        yield sleep(system.engine, 100.0)
        yield from c.out(("job", 2))
        yield from c.close()

    system.spawn(taker(system.client("t1"), "t1"))
    system.spawn(taker(system.client("t2"), "t2"))
    system.spawn(producer(system.client("p")))
    finish(system)
    assert len(got) == 2
    assert {t for _, t in got} == {("job", 1), ("job", 2)}
    assert {tag for tag, _ in got} == {"t1", "t2"}


@pytest.mark.parametrize("kind", KINDS)
def test_master_worker_bag_of_tasks(kind):
    """The canonical Linda program: a bag of tasks, workers take jobs
    and out results, the master collects."""
    system = make_linda(kind)
    N, WORKERS = 6, 2
    collected = []

    def master(c):
        for i in range(N):
            yield from c.out(("task", i))
        for _ in range(N):
            tup = yield from c.take(("result", ANY, ANY))
            collected.append(tup)
        yield from c.close()

    def worker(c, me):
        while True:
            tup = yield from c.take(("task", ANY))
            if tup[1] < 0:
                break
            yield from c.out(("result", tup[1], tup[1] ** 2))

    m = system.spawn(master(system.client("master")))
    workers = [
        system.spawn(worker(system.client(f"w{i}"), i), f"w{i}")
        for i in range(WORKERS)
    ]

    def shutdown(c):
        yield m.done
        for _ in range(WORKERS):
            yield from c.out(("task", -1))
        yield from c.close()

    system.spawn(shutdown(system.client("shutdown")))
    system.run_until_quiet(max_ms=1e6)
    assert m.finished
    assert all(w.finished for w in workers)
    assert sorted(t[1] for t in collected) == list(range(N))
    assert all(t[2] == t[1] ** 2 for t in collected)


def test_soda_blocking_take_costs_no_extra_messages():
    """The §4.1 showpiece: a take that blocks for a long time costs
    exactly the same frames as one served immediately — the pending
    request just sits in the kernel."""
    def run(delay_ms):
        system = make_linda("soda")

        def consumer(c):
            yield from c.take(("x", ANY))

        def producer(c):
            if delay_ms:
                yield sleep(system.engine, delay_ms)
            yield from c.out(("x", 1))

        system.spawn(consumer(system.client("c")))
        system.spawn(producer(system.client("p")))
        system.run_until_quiet(max_ms=1e6)
        assert system.all_finished
        return system.metrics.total("wire.frames.")

    assert run(0.0) == run(5000.0)
