"""Unit tests for the kernel-free tuple-space engine."""

import pytest

from repro.linda.space import ANY, TupleSpace, match


# ---------------------------------------------------------------- match
def test_match_arity():
    assert not match((1,), (1, 2))
    assert match((), ())


def test_match_values_types_wildcards():
    assert match((1, "a"), (1, "a"))
    assert not match((1, "a"), (1, "b"))
    assert match((int, str), (5, "x"))
    assert not match((int, str), ("x", 5))
    assert match((ANY, ANY), (object(), 3.14))
    assert match(("job", int, ANY), ("job", 7, b"blob"))


def test_match_bool_vs_int():
    # bool is a subclass of int: type-pattern int matches True
    assert match((int,), (True,))
    # but a VALUE pattern 1 matches True only by equality (it does)
    assert match((1,), (True,))


# ----------------------------------------------------------- tuple flow
def test_try_match_take_removes_oldest():
    s = TupleSpace()
    s.out(("t", 1))
    s.out(("t", 2))
    assert s.try_match(("t", ANY), take=True) == ("t", 1)
    assert s.try_match(("t", ANY), take=True) == ("t", 2)
    assert s.try_match(("t", ANY), take=True) is None


def test_try_match_read_keeps_tuple():
    s = TupleSpace()
    s.out(("t", 1))
    assert s.try_match(("t", ANY), take=False) == ("t", 1)
    assert len(s) == 1


def test_out_wakes_single_taker_oldest_first():
    s = TupleSpace()
    w1 = s.add_waiter(("t", ANY), take=True, token="first")
    w2 = s.add_waiter(("t", ANY), take=True, token="second")
    satisfied = s.out(("t", 9))
    assert [(w.token, t) for w, t in satisfied] == [("first", ("t", 9))]
    assert w2 in s.waiters  # still blocked
    assert len(s) == 0  # consumed by the taker


def test_out_wakes_readers_before_the_taker_and_keeps_order():
    s = TupleSpace()
    r1 = s.add_waiter(("t", ANY), take=False, token="r1")
    t1 = s.add_waiter(("t", ANY), take=True, token="t1")
    r2 = s.add_waiter(("t", ANY), take=False, token="r2")
    satisfied = s.out(("t", 1))
    tokens = [w.token for w, _ in satisfied]
    # readers senior to the taker see it; the taker consumes it; the
    # junior reader does not see this tuple
    assert tokens == ["r1", "t1"]
    assert [w.token for w in s.waiters] == ["r2"]
    assert len(s) == 0


def test_out_with_only_readers_keeps_the_tuple():
    s = TupleSpace()
    s.add_waiter((ANY,), take=False, token="r")
    satisfied = s.out((5,))
    assert [w.token for w, _ in satisfied] == ["r"]
    assert len(s) == 1  # read, not consumed


def test_unmatched_out_just_stores():
    s = TupleSpace()
    s.add_waiter(("x",), take=True, token="w")
    assert s.out(("y",)) == []
    assert len(s) == 1
    assert len(s.waiters) == 1


def test_remove_waiter():
    s = TupleSpace()
    w = s.add_waiter((ANY,), take=True, token="w")
    s.remove_waiter(w)
    assert s.out((1,)) == []
