"""Fixtures for the cross-kernel conformance suite.

``kernel_kind`` parametrises every test over the *registry*
(`repro.core.ports.registered_kernels`) — the three paper kernels plus
any reference backend such as ``ideal``.  Running identical LYNX
programs on every registered backend is the paper's experimental setup
taken one step further: the suite encodes both the shared semantics
and the *documented divergences* (Charlotte's §3.2.2 enclosure loss,
Chrysalis's undetected processor failures), and the divergence tests
read each backend's `KernelCapabilities` instead of hardcoding kinds.
"""

import pytest

from repro.core.api import make_cluster, registered_kernels
from repro.net import TransportUnavailable


@pytest.fixture(params=registered_kernels())
def kernel_kind(request):
    return request.param


@pytest.fixture
def cluster(kernel_kind):
    try:
        c = make_cluster(kernel_kind, seed=7)
    except TransportUnavailable as exc:
        pytest.skip(f"{kernel_kind}: this host forbids sockets ({exc})")
    yield c
    c.close()
