"""Fixtures for the cross-kernel conformance suite.

``kernel_kind`` parametrises every test over the three kernels —
running identical LYNX programs on Charlotte, SODA and Chrysalis is
the paper's experimental setup, and the suite encodes both the shared
semantics and the *documented divergences* (Charlotte's §3.2.2
enclosure loss, Chrysalis's undetected processor failures)."""

import pytest

from repro.core.api import KERNEL_KINDS, make_cluster


@pytest.fixture(params=KERNEL_KINDS)
def kernel_kind(request):
    return request.param


@pytest.fixture
def cluster(kernel_kind):
    return make_cluster(kernel_kind, seed=7)
