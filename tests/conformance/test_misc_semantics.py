"""Additional cross-kernel semantics: self-links, determinism,
double destroy, internal-consistency guarantees."""

import pytest

from repro.core.api import BYTES, INT, LinkDestroyed, Operation, Proc

ADD = Operation("add", (INT, INT), (INT,))
ECHO = Operation("echo", (BYTES,), (BYTES,))


def test_process_can_talk_to_itself_over_a_fresh_link(cluster):
    """Both ends of a new link in one process: two coroutines converse
    through the full kernel transport (loopback)."""

    class SelfTalker(Proc):
        def __init__(self):
            self.replies = []

        def server_side(self, ctx, end, n):
            yield from ctx.open(end)
            for _ in range(n):
                inc = yield from ctx.wait_request([end])
                yield from ctx.reply(inc, (inc.args[0] + inc.args[1],))

        def main(self, ctx):
            a, b = yield from ctx.new_link()
            yield from ctx.register(ADD)
            yield from ctx.fork(self.server_side(ctx, a, 3), "srv")
            for i in range(3):
                r = yield from ctx.connect(b, ADD, (i, 10))
                self.replies.append(r[0])

    p = SelfTalker()
    cluster.spawn(p, "selftalker")
    cluster.run_until_quiet(max_ms=1e6)
    assert cluster.all_finished, cluster.unfinished()
    assert p.replies == [10, 11, 12]
    cluster.check()


def test_double_destroy_is_benign(cluster):
    """Destroying a link twice (once from each end, back to back) must
    not corrupt anything: the second call either raises LinkDestroyed
    (a run-time exception, §2.2) or is absorbed quietly — and *using*
    the link afterwards always raises."""

    class P(Proc):
        def __init__(self):
            self.second_error = None
            self.use_error = None

        def main(self, ctx):
            a, b = yield from ctx.new_link()
            yield from ctx.register(ADD)
            yield from ctx.destroy(a)
            try:
                yield from ctx.destroy(b)
            except LinkDestroyed as e:
                self.second_error = e
            yield from ctx.delay(50.0)  # let any destroy notice land
            try:
                yield from ctx.connect(b, ADD, (1, 1))
            except LinkDestroyed as e:
                self.use_error = e

    p = P()
    cluster.spawn(p, "p")
    cluster.run_until_quiet(max_ms=1e6)
    assert cluster.all_finished
    assert isinstance(p.use_error, LinkDestroyed)
    assert cluster.registry.is_destroyed(1)
    cluster.check()


def test_simultaneous_destroy_from_both_sides(cluster):
    """Both owners destroy the same link at the same instant; both
    complete, nobody deadlocks, the link dies once."""

    class Destroyer(Proc):
        def main(self, ctx):
            (end,) = ctx.initial_links
            yield from ctx.delay(10.0)
            try:
                yield from ctx.destroy(end)
            except LinkDestroyed:
                pass  # lost the race: the other side got there first

    a = cluster.spawn(Destroyer(), "a")
    b = cluster.spawn(Destroyer(), "b")
    cluster.create_link(a, b)
    cluster.run_until_quiet(max_ms=1e6)
    assert cluster.all_finished, cluster.unfinished()
    assert cluster.registry.is_destroyed(1)
    cluster.check()


def test_no_protocol_violations_under_normal_load(cluster):
    """`ProtocolViolation` exists to catch runtime-internal bugs; a
    healthy mixed workload must never count one."""

    class Server(Proc):
        def main(self, ctx):
            (end,) = ctx.initial_links
            yield from ctx.register(ADD, ECHO)
            yield from ctx.open(end)
            for _ in range(6):
                inc = yield from ctx.wait_request()
                if inc.op.name == "add":
                    yield from ctx.reply(inc, (inc.args[0] + inc.args[1],))
                else:
                    yield from ctx.reply(inc, (inc.args[0],))

    class Client(Proc):
        def main(self, ctx):
            (end,) = ctx.initial_links
            for i in range(3):
                yield from ctx.connect(end, ADD, (i, 1))
                yield from ctx.connect(end, ECHO, (bytes([i]) * 10,))

    s = cluster.spawn(Server(), "server")
    c = cluster.spawn(Client(), "client")
    cluster.create_link(s, c)
    cluster.run_until_quiet(max_ms=1e6)
    assert cluster.all_finished
    cluster.check()  # would raise on any unexpected process failure


def test_same_seed_same_run(kernel_kind):
    """Determinism: identical seeds produce bit-identical metric
    snapshots and end times."""
    from repro.core.api import make_cluster

    def run(seed):
        cluster = make_cluster(kernel_kind, seed=seed)

        class Server(Proc):
            def main(self, ctx):
                (end,) = ctx.initial_links
                yield from ctx.register(ADD)
                yield from ctx.open(end)
                for _ in range(4):
                    inc = yield from ctx.wait_request()
                    yield from ctx.reply(inc, (inc.args[0] + inc.args[1],))

        class Client(Proc):
            def main(self, ctx):
                (end,) = ctx.initial_links
                for i in range(4):
                    yield from ctx.connect(end, ADD, (i, i))

        s = cluster.spawn(Server(), "server")
        c = cluster.spawn(Client(), "client")
        cluster.create_link(s, c)
        cluster.run_until_quiet(max_ms=1e6)
        return cluster.engine.now, cluster.metrics.snapshot()

    t1, m1 = run(42)
    t2, m2 = run(42)
    t3, m3 = run(43)
    assert t1 == t2 and m1 == m2
    # a different seed may legitimately differ (SODA backoff etc.), but
    # must still complete; equality is not required
    assert t3 > 0


def test_enclosure_in_mistyped_request_comes_home(cluster):
    """A request refused by the server's type screen (unknown op)
    returns its enclosures with the EXCEPTION reply — the end is not
    stranded at a server that never adopted it."""
    from repro.core.api import LINK, TypeClash
    from repro.core.registry import EndDisposition

    UNSERVED = Operation("unserved", (LINK,), ())

    class Sender(Proc):
        def __init__(self):
            self.error = None
            self.given_ref = None
            self.usable_after = False

        def main(self, ctx):
            (to_srv,) = ctx.initial_links
            mine, theirs = yield from ctx.new_link()
            self.given_ref = theirs.end_ref
            try:
                yield from ctx.connect(to_srv, UNSERVED, (theirs,))
            except TypeClash as e:
                self.error = e
            # the end must be ours again: enclosing it in a NEW message
            # must not raise LinkMoved
            yield from ctx.register(ADD)
            self.usable_after = True

    class Server(Proc):
        def main(self, ctx):
            ends = ctx.initial_links  # one link per client
            yield from ctx.register(ADD)  # does NOT serve 'unserved'
            for end in ends:
                yield from ctx.open(end)
            inc = yield from ctx.wait_request()  # a real request later
            yield from ctx.reply(inc, (inc.args[0] + inc.args[1],))

    class Follower(Proc):
        """Sends the server a well-typed request afterwards so the
        server's wait_request eventually returns."""

        def main(self, ctx):
            (end,) = ctx.initial_links
            yield from ctx.delay(500.0)
            yield from ctx.connect(end, ADD, (1, 2))

    sender = Sender()
    s = cluster.spawn(Server(), "server")
    snd = cluster.spawn(sender, "sender")
    fol = cluster.spawn(Follower(), "follower")
    cluster.create_link(s, snd)
    cluster.create_link(s, fol)
    cluster.run_until_quiet(max_ms=1e6)
    assert cluster.all_finished, cluster.unfinished()
    assert isinstance(sender.error, TypeClash)
    assert sender.usable_after
    # registry: the enclosed end is owned by the sender again
    assert cluster.registry.owner_of(sender.given_ref) == "sender"
    assert (
        cluster.registry.disposition_of(sender.given_ref)
        is EndDisposition.OWNED
    )
    cluster.check()
