"""Where the implementations legitimately differ (§3.2, §5.2, §6).

These tests run one scenario on every registered backend and assert
*different* outcomes — the paper's comparison table in executable form.
The expected outcome per backend is not hardcoded: it is read from the
backend's `KernelCapabilities` in the registry, so a new backend (like
``ideal``) is covered the moment it registers, and the table below is
derived, not duplicated:

=====================================  =========  ====  =========  =====  ============
behaviour                              charlotte  soda  chrysalis  ideal  real-asyncio
=====================================  =========  ====  =========  =====  ============
unwanted-message bounce traffic        yes        no    no         no     no
server feels RequestAborted            no         yes   yes        yes    yes
enclosures of aborted msgs recovered   no         yes   yes        yes    yes
hard processor failure detected        yes        yes   no         yes    yes
=====================================  =========  ====  =========  =====  ============

The ``real-asyncio`` column matches ``ideal`` by construction: the
real-transport kernel mirrors the ideal tables and only changes *how*
a message moves (through a real OS socket), not what happens to it.
On hosts that forbid sockets its cases skip with the reason.
"""

import pytest

from repro.core.api import (
    BYTES,
    INT,
    LINK,
    LinkDestroyed,
    Operation,
    Proc,
    RequestAborted,
    ThreadAborted,
    kernel_profile,
    make_cluster,
    registered_kernels,
)
from repro.core.registry import EndDisposition
from repro.net import TransportUnavailable
from repro.sim.failure import CrashMode

ECHO = Operation("echo", (BYTES,), (BYTES,))
ADD = Operation("add", (INT, INT), (INT,))
GIVE = Operation("give", (LINK,), ())


def _cluster(kind, **kw):
    """`make_cluster`, but a host that forbids sockets skips (with the
    reason) instead of failing the real-transport parametrisation."""
    try:
        return make_cluster(kind, **kw)
    except TransportUnavailable as exc:
        pytest.skip(f"{kind}: this host forbids sockets ({exc})")


# ----------------------------------------------------------------------
# scenario 1: the §3.2.1 reverse-direction request
# ----------------------------------------------------------------------
class _RevA(Proc):
    def __init__(self):
        self.reply = None

    def main(self, ctx):
        (end,) = ctx.initial_links
        yield from ctx.register(ECHO, ADD)
        self.reply = yield from ctx.connect(end, ECHO, (b"ping",))
        yield from ctx.open(end)
        inc = yield from ctx.wait_request()
        yield from ctx.reply(inc, (inc.args[0] + inc.args[1],))


class _RevB(Proc):
    def __init__(self):
        self.reverse_reply = None

    def reverse(self, ctx, end):
        self.reverse_reply = yield from ctx.connect(end, ADD, (2, 3))

    def main(self, ctx):
        (end,) = ctx.initial_links
        yield from ctx.register(ECHO, ADD)
        yield from ctx.open(end)
        inc = yield from ctx.wait_request()
        yield from ctx.fork(self.reverse(ctx, end), "rev")
        yield from ctx.delay(1.0)
        yield from ctx.reply(inc, (inc.args[0],))


def _run_reverse_scenario(kind):
    cluster = _cluster(kind)
    a_prog, b_prog = _RevA(), _RevB()
    a = cluster.spawn(a_prog, "A")
    b = cluster.spawn(b_prog, "B")
    cluster.create_link(a, b)
    cluster.run_until_quiet(max_ms=1e6)
    assert cluster.all_finished, (kind, cluster.unfinished())
    assert a_prog.reply == (b"ping",)
    assert b_prog.reverse_reply == (5,)
    return cluster.metrics


@pytest.mark.parametrize("kind", registered_kernels())
def test_unwanted_messages_follow_capability(kind):
    """Same program, same outcome — but only kernels that deliver
    eagerly pay bounce traffic (§6: "be sure that all received
    messages are wanted")."""
    profile = kernel_profile(kind)
    metrics = _run_reverse_scenario(kind)
    if profile.capabilities.bounces_unwanted:
        assert metrics.get("runtime.unwanted") >= 1
        if "charlotte" in profile.metric_namespaces:
            assert metrics.get("charlotte.forbid_sent") >= 1
    else:
        assert metrics.get("runtime.unwanted") == 0


# ----------------------------------------------------------------------
# scenario 2: abort after receipt -> server-side exception?
# ----------------------------------------------------------------------
class _AbortClient(Proc):
    def __init__(self, abort_at):
        self.abort_at = abort_at
        self.aborted = False

    def requester(self, ctx, end):
        try:
            yield from ctx.connect(end, ECHO, (b"x",))
        except ThreadAborted:
            self.aborted = True

    def main(self, ctx):
        (end,) = ctx.initial_links
        t = yield from ctx.fork(self.requester(ctx, end), "req")
        yield from ctx.delay(self.abort_at)
        yield from ctx.abort(t)
        yield from ctx.delay(3 * self.abort_at + 100.0)


class _SlowServer(Proc):
    def __init__(self, serve_delay):
        self.serve_delay = serve_delay
        self.reply_error = None

    def main(self, ctx):
        (end,) = ctx.initial_links
        yield from ctx.register(ECHO)
        yield from ctx.open(end)
        inc = yield from ctx.wait_request()
        yield from ctx.delay(self.serve_delay)
        try:
            yield from ctx.reply(inc, (inc.args[0],))
        except RequestAborted as e:
            self.reply_error = e


@pytest.mark.parametrize("kind", registered_kernels())
def test_server_side_abort_exception(kind):
    """§3.2/§6 item 4: only kernels whose transport can screen replies
    give the server the exception "without any extra
    acknowledgments" — Charlotte cannot."""
    profile = kernel_profile(kind)
    # time scales differ by ~25x between kernel families
    scale = profile.time_scale
    cluster = _cluster(kind)
    client = _AbortClient(abort_at=100.0 * scale)
    server = _SlowServer(serve_delay=200.0 * scale)
    s = cluster.spawn(server, "server")
    c = cluster.spawn(client, "client")
    cluster.create_link(s, c)
    cluster.run_until_quiet(max_ms=1e6)
    assert cluster.all_finished, cluster.unfinished()
    assert client.aborted
    if profile.capabilities.server_feels_abort:
        assert isinstance(server.reply_error, RequestAborted)
    else:
        assert server.reply_error is None


# ----------------------------------------------------------------------
# scenario 3: §3.2.2 — enclosure in an aborted message + receiver crash
# ----------------------------------------------------------------------
class _EncAborter(Proc):
    def __init__(self, abort_at):
        self.abort_at = abort_at
        self.given_ref = None

    def requester(self, ctx, to_b, enc):
        try:
            yield from ctx.connect(to_b, GIVE, (enc,))
        except ThreadAborted:
            pass
        except Exception:  # noqa: BLE001
            pass

    def main(self, ctx):
        (to_b,) = ctx.initial_links
        mine, theirs = yield from ctx.new_link()
        self.given_ref = theirs.end_ref
        t = yield from ctx.fork(self.requester(ctx, to_b, theirs), "req")
        yield from ctx.delay(self.abort_at)
        yield from ctx.abort(t)
        # stay alive past the measurement horizon: process exit would
        # legitimately destroy the surviving link
        yield from ctx.delay(1e9)


class _ReplyWaiter(Proc):
    """Receives A's request unintentionally (Charlotte) or never
    receives it at all (the others: queue closed)."""

    def main(self, ctx):
        (to_a,) = ctx.initial_links
        try:
            yield from ctx.connect(to_a, ECHO, (b"unanswered",))
        except LinkDestroyed:
            pass


@pytest.mark.parametrize("kind", registered_kernels())
def test_aborted_enclosure_after_crash(kind):
    """§3.2.2 (a)–(d) on every backend.  Charlotte loses the enclosed
    link; kernels where receipt only happens on explicit
    accept/scatter "recover the enclosures in aborted messages"
    (§6 item 3)."""
    profile = kernel_profile(kind)
    scale = profile.time_scale
    cluster = _cluster(kind)
    a_prog = _EncAborter(abort_at=40.0 * scale)
    a = cluster.spawn(a_prog, "A")
    b = cluster.spawn(_ReplyWaiter(), "B")
    cluster.create_link(a, b)
    # the crash lands just after the abort: late enough for the abort
    # to have gone out, early enough that Charlotte's recovery (which
    # needs the receiver alive) has not completed
    cluster.engine.schedule(45.0 * scale, cluster.crash_process, "B",
                            CrashMode.PROCESSOR)
    cluster.run_until_quiet(max_ms=1e5)
    ref = a_prog.given_ref
    disp = cluster.registry.disposition_of(ref)
    if profile.capabilities.recovers_aborted_enclosures:
        assert disp is EndDisposition.OWNED
        assert cluster.registry.owner_of(ref) == "A"
        assert not cluster.registry.is_destroyed(ref.link)
    else:
        lost = (
            disp in (EndDisposition.LOST, EndDisposition.IN_TRANSIT)
            or cluster.registry.is_destroyed(ref.link)
        )
        assert lost, f"{kind} unexpectedly preserved {ref}: {disp}"


# ----------------------------------------------------------------------
# scenario 4: hard processor failure
# ----------------------------------------------------------------------
class _CrashWatcher(Proc):
    def __init__(self):
        self.error = None

    def main(self, ctx):
        (end,) = ctx.initial_links
        try:
            yield from ctx.connect(end, ECHO, (b"x",))
        except LinkDestroyed as e:
            self.error = e


class _Doomed(Proc):
    def main(self, ctx):
        (end,) = ctx.initial_links
        yield from ctx.delay(1e6)


@pytest.mark.parametrize("kind", registered_kernels())
def test_processor_failure_detection(kind):
    """Charlotte's kernel survives its processes; SODA's kernel
    processor outlives the client processor; Chrysalis §5.2:
    "Processor failures are currently not detected." """
    profile = kernel_profile(kind)
    cluster = _cluster(kind)
    watcher = _CrashWatcher()
    d = cluster.spawn(_Doomed(), "doomed")
    w = cluster.spawn(watcher, "watcher")
    cluster.create_link(d, w)
    cluster.engine.schedule(30.0, cluster.crash_process, "doomed",
                            CrashMode.PROCESSOR)
    cluster.run_until_quiet(max_ms=1e6)
    if profile.capabilities.detects_processor_failure:
        assert isinstance(watcher.error, LinkDestroyed)
        assert cluster.processes["watcher"].finished
    else:
        assert watcher.error is None
        assert "watcher" in cluster.unfinished()
