"""Capability-style link handling, identical across kernels.

Link ends enclosed in *replies* (a server minting per-resource links),
re-delegation chains, and concurrent server coroutines — the
loosely-coupled patterns §2 says LYNX exists for.
"""

import pytest

from repro.core.api import (
    BYTES,
    INT,
    LINK,
    LinkDestroyed,
    Operation,
    Proc,
    STR,
)

MINT = Operation("mint", (STR,), (LINK,))
USE = Operation("use", (INT,), (INT,))
DELEGATE = Operation("delegate", (LINK,), ())


def test_reply_enclosure_moves_capability(cluster):
    """A link end enclosed in a REPLY moves to the requester."""

    class Issuer(Proc):
        def cap_worker(self, ctx, end, tag):
            yield from ctx.open(end)
            inc = yield from ctx.wait_request([end])
            yield from ctx.reply(inc, (inc.args[0] * len(tag),))

        def main(self, ctx):
            (public,) = ctx.initial_links
            yield from ctx.register(MINT, USE)
            yield from ctx.open(public)
            inc = yield from ctx.wait_request([public])
            (tag,) = inc.args
            mine, theirs = yield from ctx.new_link()
            yield from ctx.fork(self.cap_worker(ctx, mine, tag), "cap")
            yield from ctx.reply(inc, (theirs,))

    class Holder(Proc):
        def __init__(self):
            self.result = None

        def main(self, ctx):
            (public,) = ctx.initial_links
            (cap,) = yield from ctx.connect(public, MINT, ("xyz",))
            (v,) = yield from ctx.connect(cap, USE, (7,))
            self.result = v

    holder = Holder()
    i = cluster.spawn(Issuer(), "issuer")
    h = cluster.spawn(holder, "holder")
    cluster.create_link(i, h)
    cluster.run_until_quiet(max_ms=1e6)
    assert cluster.all_finished, cluster.unfinished()
    assert holder.result == 21
    cluster.check()


def test_capability_redelegation_chain(cluster):
    """A capability minted by the issuer is re-delegated holder →
    friend, who then uses it; the issuer is oblivious to the
    delegation (§2.1's oblivious far end)."""

    class Issuer(Proc):
        def cap_worker(self, ctx, end):
            yield from ctx.open(end)
            inc = yield from ctx.wait_request([end])
            yield from ctx.reply(inc, (inc.args[0] + 1000,))

        def main(self, ctx):
            (public,) = ctx.initial_links
            yield from ctx.register(MINT, USE)
            yield from ctx.open(public)
            inc = yield from ctx.wait_request([public])
            mine, theirs = yield from ctx.new_link()
            yield from ctx.fork(self.cap_worker(ctx, mine), "cap")
            yield from ctx.reply(inc, (theirs,))
            yield from ctx.delay(3000.0)  # outlive the delegation dance

    class Holder(Proc):
        def main(self, ctx):
            public, to_friend = ctx.initial_links
            yield from ctx.register(DELEGATE)
            (cap,) = yield from ctx.connect(public, MINT, ("t",))
            yield from ctx.connect(to_friend, DELEGATE, (cap,))
            yield from ctx.delay(3000.0)  # serve hint repairs if any

    class Friend(Proc):
        def __init__(self):
            self.result = None

        def main(self, ctx):
            (from_holder,) = ctx.initial_links
            yield from ctx.register(DELEGATE, USE)
            yield from ctx.open(from_holder)
            inc = yield from ctx.wait_request()
            cap = inc.args[0]
            yield from ctx.reply(inc, ())
            (v,) = yield from ctx.connect(cap, USE, (5,))
            self.result = v

    friend = Friend()
    i = cluster.spawn(Issuer(), "issuer")
    h = cluster.spawn(Holder(), "holder")
    f = cluster.spawn(friend, "friend")
    cluster.create_link(i, h)
    cluster.create_link(h, f)
    cluster.run_until_quiet(max_ms=1e6)
    assert friend.result == 1005, cluster.unfinished()
    cluster.check()


def test_concurrent_server_coroutines_one_process(cluster):
    """Multiple wait_request coroutines in one process share the open
    queues without stealing each other's filtered traffic."""

    class TwoDesk(Proc):
        def __init__(self):
            self.desk_log = {1: [], 2: []}

        def desk(self, ctx, end, ident):
            for _ in range(2):
                inc = yield from ctx.wait_request([end])
                self.desk_log[ident].append(inc.args[0])
                yield from ctx.reply(inc, (ident,))

        def main(self, ctx):
            end1, end2 = ctx.initial_links
            yield from ctx.register(USE)
            yield from ctx.open(end1)
            yield from ctx.open(end2)
            t1 = yield from ctx.fork(self.desk(ctx, end1, 1), "d1")
            t2 = yield from ctx.fork(self.desk(ctx, end2, 2), "d2")
            while t1.live or t2.live:
                yield from ctx.delay(10.0)

    class Caller(Proc):
        def __init__(self):
            self.answers = []

        def main(self, ctx):
            (end,) = ctx.initial_links
            for i in range(2):
                r = yield from ctx.connect(end, USE, (i,))
                self.answers.append(r[0])

    server = TwoDesk()
    a, b = Caller(), Caller()
    s = cluster.spawn(server, "server")
    ca = cluster.spawn(a, "ca")
    cb = cluster.spawn(b, "cb")
    cluster.create_link(s, ca)  # end1
    cluster.create_link(s, cb)  # end2
    cluster.run_until_quiet(max_ms=1e6)
    assert cluster.all_finished, cluster.unfinished()
    assert a.answers == [1, 1]
    assert b.answers == [2, 2]
    assert server.desk_log == {1: [0, 1], 2: [0, 1]}
    cluster.check()


def test_destroying_capability_signals_worker(cluster):
    """Destroying a received capability end reaches the issuer's
    worker coroutine as LinkDestroyed."""

    class Issuer(Proc):
        def __init__(self):
            self.worker_saw_destroy = False

        def cap_worker(self, ctx, end):
            yield from ctx.open(end)
            try:
                yield from ctx.wait_request([end])
            except LinkDestroyed:
                self.worker_saw_destroy = True

        def main(self, ctx):
            (public,) = ctx.initial_links
            yield from ctx.register(MINT)
            yield from ctx.open(public)
            inc = yield from ctx.wait_request([public])
            mine, theirs = yield from ctx.new_link()
            yield from ctx.fork(self.cap_worker(ctx, mine), "cap")
            yield from ctx.reply(inc, (theirs,))

    class Dropper(Proc):
        def main(self, ctx):
            (public,) = ctx.initial_links
            (cap,) = yield from ctx.connect(public, MINT, ("t",))
            yield from ctx.destroy(cap)
            yield from ctx.delay(200.0)

    issuer = Issuer()
    i = cluster.spawn(issuer, "issuer")
    d = cluster.spawn(Dropper(), "dropper")
    cluster.create_link(i, d)
    cluster.run_until_quiet(max_ms=1e6)
    assert cluster.all_finished, cluster.unfinished()
    assert issuer.worker_saw_destroy
    cluster.check()


def test_array_of_links_moves_every_element(cluster):
    """§2.1: "an arbitrary number of link ends" — here inside an
    ArrayType(LINK) value, exercising codec + enclosure integration on
    each kernel (and Charlotte's enc-packet train)."""
    from repro.core.api import ArrayType, INT, LINK, Operation, Proc

    GIVE_MANY = Operation("give_many", (ArrayType(LINK), INT), ())
    PING = Operation("ping", (INT,), (INT,))

    class Giver(Proc):
        def __init__(self):
            self.replies = []

        def main(self, ctx):
            (to_taker,) = ctx.initial_links
            keep, give = [], []
            for _ in range(4):
                mine, theirs = yield from ctx.new_link()
                keep.append(mine)
                give.append(theirs)
            yield from ctx.connect(to_taker, GIVE_MANY, (give, len(give)))
            for i, mine in enumerate(keep):
                r = yield from ctx.connect(mine, PING, (i,))
                self.replies.append(r[0])

    class Taker(Proc):
        def main(self, ctx):
            (from_giver,) = ctx.initial_links
            yield from ctx.register(GIVE_MANY, PING)
            yield from ctx.open(from_giver)
            inc = yield from ctx.wait_request()
            ends, n = inc.args
            assert len(ends) == n == 4
            yield from ctx.reply(inc, ())
            for e in ends:
                yield from ctx.open(e)
            for _ in range(n):
                req = yield from ctx.wait_request(ends)
                yield from ctx.reply(req, (req.args[0] * 10,))

    giver = Giver()
    g = cluster.spawn(giver, "giver")
    t = cluster.spawn(Taker(), "taker")
    cluster.create_link(g, t)
    cluster.run_until_quiet(max_ms=1e6)
    assert cluster.all_finished, cluster.unfinished()
    assert giver.replies == [0, 10, 20, 30]
    cluster.check()
