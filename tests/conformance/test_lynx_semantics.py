"""LYNX semantics that must hold identically on all three kernels."""

import pytest

from repro.core.api import (
    ArrayType,
    BYTES,
    INT,
    LINK,
    LinkDestroyed,
    Operation,
    Proc,
    STR,
    TypeClash,
)

ECHO = Operation("echo", (BYTES,), (BYTES,))
ADD = Operation("add", (INT, INT), (INT,))
GIVE = Operation("give", (LINK,), ())
LOOKUP = Operation(
    "lookup", (STR,), (ArrayType(INT),)
)


class EchoAddServer(Proc):
    def __init__(self, n=1):
        self.n = n
        self.served = []

    def main(self, ctx):
        (end,) = ctx.initial_links
        yield from ctx.register(ECHO, ADD, LOOKUP)
        yield from ctx.open(end)
        for _ in range(self.n):
            inc = yield from ctx.wait_request()
            self.served.append(inc.op.name)
            if inc.op.name == "echo":
                yield from ctx.reply(inc, (inc.args[0],))
            elif inc.op.name == "add":
                yield from ctx.reply(inc, (inc.args[0] + inc.args[1],))
            else:
                yield from ctx.reply(inc, ([ord(c) for c in inc.args[0]],))


def run(cluster, *, timeout=1e6):
    cluster.run_until_quiet(max_ms=timeout)
    return cluster


def test_rpc_roundtrip(cluster):
    class Client(Proc):
        def __init__(self):
            self.out = []

        def main(self, ctx):
            (end,) = ctx.initial_links
            r = yield from ctx.connect(end, ECHO, (b"payload",))
            self.out.append(r)
            r = yield from ctx.connect(end, ADD, (19, 23))
            self.out.append(r)
            r = yield from ctx.connect(end, LOOKUP, ("hi",))
            self.out.append(r)

    server, client = EchoAddServer(3), Client()
    s = cluster.spawn(server, "server")
    c = cluster.spawn(client, "client")
    cluster.create_link(s, c)
    run(cluster)
    assert cluster.all_finished, cluster.unfinished()
    assert client.out == [(b"payload",), (42,), ([104, 105],)]
    cluster.check()


def test_per_queue_fifo_order(cluster):
    """§2.1: "Messages in the same queue are received in the order
    sent." """

    class Server(Proc):
        def __init__(self):
            self.seen = []

        def main(self, ctx):
            (end,) = ctx.initial_links
            yield from ctx.register(ADD)
            yield from ctx.open(end)
            for _ in range(6):
                inc = yield from ctx.wait_request()
                self.seen.append(inc.args[0])
                yield from ctx.reply(inc, (0,))

    class Client(Proc):
        def worker(self, ctx, end, i):
            yield from ctx.connect(end, ADD, (i, 0))

        def main(self, ctx):
            (end,) = ctx.initial_links
            for i in range(6):
                # sequential sends from one coroutine would trivially be
                # ordered; interleave coroutines that send back-to-back
                yield from ctx.connect(end, ADD, (i, 0))

    server = Server()
    s = cluster.spawn(server, "server")
    c = cluster.spawn(Client(), "client")
    cluster.create_link(s, c)
    run(cluster)
    assert server.seen == [0, 1, 2, 3, 4, 5]
    cluster.check()


def test_type_clash_surfaces_at_requester(cluster):
    BAD = Operation("add", (STR,), (STR,))

    class Client(Proc):
        def __init__(self):
            self.error = None

        def main(self, ctx):
            (end,) = ctx.initial_links
            try:
                yield from ctx.connect(end, BAD, ("x",))
            except TypeClash as e:
                self.error = e

    client = Client()
    # the server waits for one (good) request; the bad one is refused
    # by its runtime's type screen and never reaches user code
    s = cluster.spawn(EchoAddServer(1), "server")
    c = cluster.spawn(client, "client")
    cluster.create_link(s, c)
    run(cluster)
    assert isinstance(client.error, TypeClash)


def test_moving_one_end_mid_conversation(cluster):
    """A server end migrates to a new process; the client keeps using
    its (unmoved) end obliviously — §2.1's flexible hose."""

    class Client(Proc):
        def __init__(self):
            self.replies = []

        def main(self, ctx):
            (end,) = ctx.initial_links
            for i in range(2):
                r = yield from ctx.connect(end, ADD, (i, 100))
                self.replies.append(r[0])
                yield from ctx.delay(300.0)

    class OldServer(Proc):
        def main(self, ctx):
            serve, handoff = ctx.initial_links
            yield from ctx.register(ADD, GIVE)
            yield from ctx.open(serve)
            inc = yield from ctx.wait_request()
            yield from ctx.reply(inc, (inc.args[0] + inc.args[1],))
            yield from ctx.close(serve)
            yield from ctx.connect(handoff, GIVE, (serve,))
            yield from ctx.delay(2000.0)  # stay alive (serves redirects)

    class NewServer(Proc):
        def main(self, ctx):
            (from_old,) = ctx.initial_links
            yield from ctx.register(ADD, GIVE)
            yield from ctx.open(from_old)
            inc = yield from ctx.wait_request()
            moved = inc.args[0]
            yield from ctx.reply(inc, ())
            yield from ctx.open(moved)
            inc2 = yield from ctx.wait_request()
            yield from ctx.reply(inc2, (inc2.args[0] + inc2.args[1] + 1000,))

    client = Client()
    c = cluster.spawn(client, "client")
    old = cluster.spawn(OldServer(), "old")
    new = cluster.spawn(NewServer(), "new")
    cluster.create_link(old, c)   # serve <-> client end
    cluster.create_link(old, new)  # handoff
    run(cluster)
    assert client.replies == [100, 1101]
    cluster.check()


def test_figure1_both_ends_move_simultaneously(cluster):
    """Figure 1: A and D independently move the two ends of link 3;
    afterwards it connects B and C, who talk over it."""

    class Starter(Proc):
        def main(self, ctx):
            to_a, to_d = ctx.initial_links
            yield from ctx.register(GIVE)
            e_a, e_d = yield from ctx.new_link()
            yield from ctx.connect(to_a, GIVE, (e_a,))
            yield from ctx.connect(to_d, GIVE, (e_d,))
            yield from ctx.delay(5000.0)  # serve stale-hint redirects

    class Mover(Proc):
        """Receives an end of link3 from the starter, then moves it on
        to its target."""

        def main(self, ctx):
            from_starter, to_target = ctx.initial_links
            yield from ctx.register(GIVE)
            yield from ctx.open(from_starter)
            inc = yield from ctx.wait_request()
            l3 = inc.args[0]
            yield from ctx.reply(inc, ())
            yield from ctx.connect(to_target, GIVE, (l3,))
            yield from ctx.delay(5000.0)  # serve stale-hint redirects

    class B(Proc):
        """Final holder; acts as the client over link3."""

        def __init__(self):
            self.reply = None

        def main(self, ctx):
            (from_mover,) = ctx.initial_links
            yield from ctx.register(GIVE, ADD)
            yield from ctx.open(from_mover)
            inc = yield from ctx.wait_request()
            l3 = inc.args[0]
            yield from ctx.reply(inc, ())
            yield from ctx.delay(500.0)  # let C finish adopting too
            self.reply = yield from ctx.connect(l3, ADD, (30, 12))

    class C(Proc):
        """Final holder; serves over link3."""

        def main(self, ctx):
            (from_mover,) = ctx.initial_links
            yield from ctx.register(GIVE, ADD)
            yield from ctx.open(from_mover)
            inc = yield from ctx.wait_request()
            l3 = inc.args[0]
            yield from ctx.reply(inc, ())
            yield from ctx.open(l3)
            inc2 = yield from ctx.wait_request()
            yield from ctx.reply(inc2, (inc2.args[0] + inc2.args[1],))

    starter = cluster.spawn(Starter(), "starter")
    mover_a = cluster.spawn(Mover(), "a")
    mover_d = cluster.spawn(Mover(), "d")
    b_prog, c_prog = B(), C()
    b = cluster.spawn(b_prog, "b")
    c = cluster.spawn(c_prog, "c")
    cluster.create_link(starter, mover_a)
    cluster.create_link(starter, mover_d)
    cluster.create_link(mover_a, b)
    cluster.create_link(mover_d, c)
    run(cluster)
    assert b_prog.reply == (42,), cluster.unfinished()
    cluster.check()


def test_termination_destroys_links(cluster):
    class Short(Proc):
        def main(self, ctx):
            yield from ctx.delay(1.0)

    class Watcher(Proc):
        def __init__(self):
            self.error = None

        def main(self, ctx):
            (end,) = ctx.initial_links
            yield from ctx.delay(300.0)
            try:
                yield from ctx.connect(end, ECHO, (b"x",))
            except LinkDestroyed as e:
                self.error = e

    watcher = Watcher()
    s = cluster.spawn(Short(), "short")
    w = cluster.spawn(watcher, "watcher")
    cluster.create_link(s, w)
    run(cluster)
    assert isinstance(watcher.error, LinkDestroyed)
    cluster.check()


def test_destroyed_link_raises_on_send(cluster):
    class Destroyer(Proc):
        def main(self, ctx):
            (end,) = ctx.initial_links
            yield from ctx.delay(20.0)
            yield from ctx.destroy(end)
            yield from ctx.delay(500.0)

    class User(Proc):
        def __init__(self):
            self.error = None

        def main(self, ctx):
            (end,) = ctx.initial_links
            yield from ctx.delay(300.0)  # destruction already known
            try:
                yield from ctx.connect(end, ECHO, (b"x",))
            except LinkDestroyed as e:
                self.error = e

    user = User()
    d = cluster.spawn(Destroyer(), "destroyer")
    u = cluster.spawn(user, "user")
    cluster.create_link(d, u)
    run(cluster)
    assert isinstance(user.error, LinkDestroyed)
    cluster.check()


def test_fairness_no_queue_ignored_forever(cluster):
    """§2.1: "an implementation must guarantee that no queue is ignored
    forever."  One chatty client floods; one quiet client must still be
    served promptly."""

    class Server(Proc):
        def __init__(self):
            self.order = []

        def main(self, ctx):
            ends = ctx.initial_links
            yield from ctx.register(ADD)
            for e in ends:
                yield from ctx.open(e)
            for _ in range(8):
                inc = yield from ctx.wait_request()
                self.order.append(inc.args[0])
                yield from ctx.reply(inc, (0,))

    class Chatty(Proc):
        def main(self, ctx):
            (end,) = ctx.initial_links
            for _ in range(7):
                yield from ctx.connect(end, ADD, (1, 0))

    class Quiet(Proc):
        def __init__(self):
            self.served_pos = None

        def main(self, ctx):
            (end,) = ctx.initial_links
            yield from ctx.connect(end, ADD, (2, 0))

    server, quiet = Server(), Quiet()
    s = cluster.spawn(server, "server")
    ch = cluster.spawn(Chatty(), "chatty")
    q = cluster.spawn(quiet, "quiet")
    cluster.create_link(s, ch)
    cluster.create_link(s, q)
    run(cluster)
    assert cluster.all_finished, cluster.unfinished()
    # the quiet client's single request was not starved to the end
    pos = server.order.index(2)
    assert pos < len(server.order) - 1, server.order
    cluster.check()
