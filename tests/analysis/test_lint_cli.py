"""Tests for ``python -m repro lint``: exit codes, the JSON report
(checked against the golden schema the same way BENCH docs are), the
baseline workflow, and the path-error convention shared with
``bench --only``."""

import json
from pathlib import Path

from repro.cli import main

HERE = Path(__file__).resolve().parent
FIXTURES = HERE / "fixtures"
GOLDEN = HERE / "golden_lint_schema.json"


def test_lint_shipped_tree_exits_zero(capsys):
    assert main(["lint"]) == 0
    out = capsys.readouterr().out
    assert "repro lint: ok" in out


def test_lint_exits_nonzero_on_each_bad_fixture(capsys):
    for fixture in sorted(FIXTURES.glob("*_bad.py")):
        assert main(["lint", str(fixture)]) == 1, fixture.name
        out = capsys.readouterr().out
        assert "finding(s)" in out


def test_lint_clean_fixture_exits_zero(capsys):
    assert main(["lint", str(FIXTURES / "clean.py")]) == 0
    capsys.readouterr()


def test_lint_missing_path_exits_2_with_message(capsys):
    assert main(["lint", "no/such/path.py"]) == 2
    err = capsys.readouterr().err
    assert "repro lint:" in err and "no such file or directory" in err


def test_lint_json_stdout_matches_golden_schema(capsys):
    assert main(["lint", "--json", "-", str(FIXTURES)]) == 1
    doc = json.loads(capsys.readouterr().out)
    golden = json.loads(GOLDEN.read_text())
    assert doc["schema"] == golden["schema"]
    assert doc["schema_version"] == golden["schema_version"]
    assert sorted(doc) == golden["top_level"]
    assert sorted(doc["counts"]) == golden["counts_keys"]
    assert sorted(doc["rules"]) == golden["rule_ids"]
    for entry in doc["rules"].values():
        assert sorted(entry) == golden["rule_keys"]
    assert doc["findings"], "fixture dir must produce findings"
    for f in doc["findings"]:
        assert sorted(f) == golden["finding_keys"]
    assert doc["exit_code"] == 1
    assert doc["counts"]["active"] == len(doc["findings"])


def test_lint_json_report_is_deterministic(capsys):
    """Two runs over the same tree produce byte-identical reports —
    no timestamps, no absolute paths, stable ordering."""
    assert main(["lint", "--json", "-", str(FIXTURES)]) == 1
    first = capsys.readouterr().out
    assert main(["lint", "--json", "-", str(FIXTURES)]) == 1
    assert capsys.readouterr().out == first


def test_lint_json_to_file(tmp_path, capsys):
    out = tmp_path / "lint.json"
    assert main(["lint", "--json", str(out)]) == 0
    assert f"wrote {out}" in capsys.readouterr().out
    doc = json.loads(out.read_text())
    assert doc["schema"] == "repro.lint"
    assert doc["exit_code"] == 0


def test_lint_fix_baseline_then_clean(tmp_path, capsys):
    """--fix-baseline grandfathers current findings; the next run
    against that baseline exits 0 and reports them as baselined."""
    baseline = tmp_path / "base.json"
    bad = FIXTURES / "sim001_bad.py"
    assert main(["lint", "--baseline", str(baseline),
                 "--fix-baseline", str(bad)]) == 0
    out = capsys.readouterr().out
    assert "grandfathered" in out
    doc = json.loads(baseline.read_text())
    assert doc["schema"] == "repro.lint-baseline"
    assert len(doc["entries"]) == 1  # one (rule, path) pair
    assert doc["entries"][0]["rule"] == "SIM001"

    assert main(["lint", "--baseline", str(baseline), str(bad)]) == 0
    out = capsys.readouterr().out
    assert "baselined" in out


def test_lint_malformed_baseline_exits_2(tmp_path, capsys):
    baseline = tmp_path / "base.json"
    baseline.write_text(json.dumps({"schema": "wrong",
                                    "schema_version": 1, "entries": []}))
    assert main(["lint", "--baseline", str(baseline)]) == 2
    assert "repro lint:" in capsys.readouterr().err


def test_lint_suppressions_visible_in_text_summary(capsys):
    """The shipped tree's sanctioned wall-clock uses show up in the
    summary so the escape hatch stays visible."""
    assert main(["lint"]) == 0
    out = capsys.readouterr().out
    assert "suppressed" in out
