"""Tests for ``python -m repro lint``: exit codes, the JSON report
(checked against the golden schema the same way BENCH docs are), the
baseline workflow, and the path-error convention shared with
``bench --only``."""

import json
from pathlib import Path

from repro.cli import main

HERE = Path(__file__).resolve().parent
FIXTURES = HERE / "fixtures"
GOLDEN = HERE / "golden_lint_schema.json"


def test_lint_shipped_tree_exits_zero(capsys):
    assert main(["lint"]) == 0
    out = capsys.readouterr().out
    assert "repro lint: ok" in out


def test_lint_exits_nonzero_on_each_bad_fixture(capsys):
    for fixture in sorted(FIXTURES.glob("*_bad.py")):
        assert main(["lint", str(fixture)]) == 1, fixture.name
        out = capsys.readouterr().out
        assert "finding(s)" in out


def test_lint_clean_fixture_exits_zero(capsys):
    assert main(["lint", str(FIXTURES / "clean.py")]) == 0
    capsys.readouterr()


def test_lint_missing_path_exits_2_with_message(capsys):
    assert main(["lint", "no/such/path.py"]) == 2
    err = capsys.readouterr().err
    assert "repro lint:" in err and "no such file or directory" in err


def test_lint_json_stdout_matches_golden_schema(capsys):
    assert main(["lint", "--json", "-", str(FIXTURES)]) == 1
    doc = json.loads(capsys.readouterr().out)
    golden = json.loads(GOLDEN.read_text())
    assert doc["schema"] == golden["schema"]
    assert doc["schema_version"] == golden["schema_version"]
    assert sorted(doc) == golden["top_level"]
    assert sorted(doc["counts"]) == golden["counts_keys"]
    assert sorted(doc["rules"]) == golden["rule_ids"]
    for entry in doc["rules"].values():
        assert sorted(entry) == golden["rule_keys"]
    assert doc["findings"], "fixture dir must produce findings"
    for f in doc["findings"]:
        assert sorted(f) == golden["finding_keys"]
    assert doc["exit_code"] == 1
    assert doc["counts"]["active"] == len(doc["findings"])


def test_lint_json_report_is_deterministic(capsys):
    """Two runs over the same tree produce byte-identical reports —
    no timestamps, no absolute paths, stable ordering."""
    assert main(["lint", "--json", "-", str(FIXTURES)]) == 1
    first = capsys.readouterr().out
    assert main(["lint", "--json", "-", str(FIXTURES)]) == 1
    assert capsys.readouterr().out == first


def test_lint_json_to_file(tmp_path, capsys):
    out = tmp_path / "lint.json"
    assert main(["lint", "--json", str(out)]) == 0
    assert f"wrote {out}" in capsys.readouterr().out
    doc = json.loads(out.read_text())
    assert doc["schema"] == "repro.lint"
    assert doc["exit_code"] == 0


def test_lint_fix_baseline_then_clean(tmp_path, capsys):
    """--fix-baseline grandfathers current findings; the next run
    against that baseline exits 0 and reports them as baselined."""
    baseline = tmp_path / "base.json"
    bad = FIXTURES / "sim001_bad.py"
    assert main(["lint", "--baseline", str(baseline),
                 "--fix-baseline", str(bad)]) == 0
    out = capsys.readouterr().out
    assert "grandfathered" in out
    doc = json.loads(baseline.read_text())
    assert doc["schema"] == "repro.lint-baseline"
    assert len(doc["entries"]) == 1  # one (rule, path) pair
    assert doc["entries"][0]["rule"] == "SIM001"

    assert main(["lint", "--baseline", str(baseline), str(bad)]) == 0
    out = capsys.readouterr().out
    assert "baselined" in out


def test_lint_malformed_baseline_exits_2(tmp_path, capsys):
    baseline = tmp_path / "base.json"
    baseline.write_text(json.dumps({"schema": "wrong",
                                    "schema_version": 1, "entries": []}))
    assert main(["lint", "--baseline", str(baseline)]) == 2
    assert "repro lint:" in capsys.readouterr().err


def test_lint_suppressions_visible_in_text_summary(capsys):
    """The shipped tree's sanctioned wall-clock uses show up in the
    summary so the escape hatch stays visible."""
    assert main(["lint"]) == 0
    out = capsys.readouterr().out
    assert "suppressed" in out


def test_lint_deep_shipped_tree_exits_zero(capsys):
    """The acceptance bar: the whole-program pass over src/ is clean
    with the shipped (empty) baseline."""
    assert main(["lint", "--deep"]) == 0
    out = capsys.readouterr().out
    assert "repro lint --deep: ok" in out
    assert "deep rules" in out


def test_lint_deep_json_report_carries_scope(capsys):
    assert main(["lint", "--deep", "--json", "-", str(FIXTURES)]) == 1
    doc = json.loads(capsys.readouterr().out)
    golden = json.loads(GOLDEN.read_text())
    assert doc["deep"] is True
    deep_ids = [r for r, e in doc["rules"].items()
                if e["scope"] == "program"]
    assert sorted(deep_ids) == golden["deep_rule_ids"]
    shallow_ids = [r for r, e in doc["rules"].items()
                   if e["scope"] == "module"]
    assert sorted(shallow_ids) == golden["rule_ids"]
    # the deep fixture pairs seed at least one finding per deep rule
    fired = {f["rule"] for f in doc["findings"]}
    assert set(golden["deep_rule_ids"]) <= fired


def test_lint_report_v1_round_trip(capsys):
    """`load_lint_report` still accepts version-1 documents (no `deep`
    flag, no per-rule `scope`) and normalizes them to the v2 shape."""
    from repro.analysis.lint import LintReportError, load_lint_report

    assert main(["lint", "--json", "-", str(FIXTURES)]) == 1
    v2 = json.loads(capsys.readouterr().out)

    v1 = {k: v for k, v in v2.items() if k != "deep"}
    v1["schema_version"] = 1
    v1["rules"] = {
        rid: {k: v for k, v in entry.items() if k != "scope"}
        for rid, entry in v2["rules"].items()
    }
    loaded = load_lint_report(v1)
    assert loaded["schema_version"] == 2
    assert loaded["deep"] is False
    assert all(
        e["scope"] == "module" for e in loaded["rules"].values()
    )
    # a modern doc loads unchanged
    assert load_lint_report(v2)["deep"] is False

    import pytest

    with pytest.raises(LintReportError):
        load_lint_report({**v2, "schema": "wrong"})
    with pytest.raises(LintReportError):
        load_lint_report({**v1, "deep": True})  # v1 cannot carry deep
    missing = {k: v for k, v in v2.items() if k != "findings"}
    with pytest.raises(LintReportError):
        load_lint_report(missing)


def test_lint_fix_baseline_prunes_orphans(tmp_path, capsys):
    """A baseline entry whose finding no longer fires is pruned and
    the refresh exits non-zero — the baseline can only shrink."""
    baseline = tmp_path / "base.json"
    assert main(["lint", "--baseline", str(baseline), "--fix-baseline",
                 str(FIXTURES / "sim001_bad.py")]) == 0
    capsys.readouterr()

    assert main(["lint", "--baseline", str(baseline), "--fix-baseline",
                 str(FIXTURES / "clean.py")]) == 1
    out = capsys.readouterr().out
    assert "pruned orphaned baseline entry" in out
    assert "SIM001" in out
    doc = json.loads(baseline.read_text())
    assert doc["entries"] == []

    # and the pruned baseline is stable: a second refresh is a no-op
    assert main(["lint", "--baseline", str(baseline), "--fix-baseline",
                 str(FIXTURES / "clean.py")]) == 0
    capsys.readouterr()
