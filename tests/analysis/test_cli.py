"""Tests for the CLI (`python -m repro ...`)."""

import pytest

from repro.cli import main


def test_rpc_command(capsys):
    assert main(["rpc", "--kernel", "chrysalis", "--count", "3"]) == 0
    out = capsys.readouterr().out
    assert "chrysalis" in out and "mean ms" in out


def test_compare_command(capsys):
    assert main(["compare", "--count", "2"]) == 0
    out = capsys.readouterr().out
    for kind in ("charlotte", "soda", "chrysalis"):
        assert kind in out


def test_figure2_command(capsys):
    assert main(["figure2", "--enclosures", "3"]) == 0
    out = capsys.readouterr().out
    assert "goahead" in out and out.count("enc") >= 2


def test_figure2_on_chrysalis_has_no_protocol(capsys):
    assert main(["figure2", "--kernel", "chrysalis"]) == 0
    out = capsys.readouterr().out
    assert "goahead" not in out
    assert "request" in out and "reply" in out


def test_migrate_command(capsys):
    assert main(["migrate", "--kernel", "chrysalis", "--hops", "3"]) == 0
    out = capsys.readouterr().out
    assert "repair_latency_ms" in out


def test_sizes_command(capsys):
    assert main(["sizes"]) == 0
    out = capsys.readouterr().out
    assert "charlotte special cases" in out


def test_unknown_command_rejected():
    with pytest.raises(SystemExit):
        main(["no-such-command"])


def test_sweep_command(capsys):
    from repro.cli import main as _main

    assert _main(["sweep"]) == 0
    out = capsys.readouterr().out
    assert "charlotte" in out and "soda" in out


def test_linda_command(capsys):
    from repro.cli import main as _main

    assert _main(["linda", "--kernel", "chrysalis", "--tasks", "4",
                  "--workers", "2"]) == 0
    out = capsys.readouterr().out
    assert "results collected" in out


def test_trace_by_layer_default(capsys):
    assert main(["trace", "--kernel", "chrysalis", "--count", "2"]) == 0
    out = capsys.readouterr().out
    assert "critical-path latency by layer" in out
    assert "runtime" in out and "kernel" in out and "(total)" in out


def test_trace_critical_path_waterfall(capsys):
    assert main(["trace", "--kernel", "charlotte", "--count", "1",
                 "--critical-path"]) == 0
    out = capsys.readouterr().out
    assert "rpc:connect:ping" in out and "█" in out
    assert "critical path of trace" in out


def test_trace_chrome_export_and_jsonl_reload(tmp_path, capsys):
    import json

    chrome = tmp_path / "trace.json"
    assert main(["trace", "--kernel", "soda", "--count", "2",
                 "--chrome", str(chrome)]) == 0
    doc = json.loads(chrome.read_text())
    assert doc["traceEvents"]
    # offline: export a run to JSONL, reload it through --jsonl
    from repro.workloads.rpc import run_rpc_workload

    jsonl = tmp_path / "run.jsonl"
    r = run_rpc_workload("chrysalis", 0, count=2, seed=0)
    jsonl.write_text(r.trace.to_jsonl())
    capsys.readouterr()
    assert main(["trace", "--jsonl", str(jsonl), "--by-layer"]) == 0
    out = capsys.readouterr().out
    assert "critical-path latency by layer" in out


def test_trace_selftest_command(capsys):
    assert main(["trace", "--selftest"]) == 0
    out = capsys.readouterr().out
    assert "all kernels ok" in out


def test_flight_demo_writes_and_describes_dumps(tmp_path, capsys):
    out_dir = tmp_path / "flight"
    assert main(["flight", "--demo", "--out", str(out_dir),
                 "--kernel", "charlotte"]) == 0
    out = capsys.readouterr().out
    assert "wrote" in out
    assert "partition-entered" in out
    assert "last" in out and "events" in out
    dumps = sorted(out_dir.glob("*.jsonl"))
    assert dumps


def test_flight_inspects_existing_dump(tmp_path, capsys):
    out_dir = tmp_path / "flight"
    assert main(["flight", "--demo", "--out", str(out_dir),
                 "--kernel", "charlotte"]) == 0
    capsys.readouterr()
    dump = sorted(out_dir.glob("*.jsonl"))[0]
    assert main(["flight", str(dump), "--tail", "5"]) == 0
    out = capsys.readouterr().out
    assert f"flight dump {dump.name}" in out
    assert "reason   partition-entered" in out


def test_flight_rejects_a_non_dump(tmp_path, capsys):
    bogus = tmp_path / "bogus.jsonl"
    bogus.write_text('{"schema": "other"}\n')
    assert main(["flight", str(bogus)]) == 2


def test_top_prints_windowed_table(capsys):
    assert main(["top", "--kernel", "soda", "--quick", "--count", "12"]) == 0
    out = capsys.readouterr().out
    assert "t0 ms" in out and "goodput/s" in out
    assert "fault drops" in out
    # the partition scenario must show at least one degraded window
    assert any(line.split() for line in out.splitlines())


def test_top_clean_scenario(capsys):
    assert main(["top", "--kernel", "ideal", "--scenario", "clean",
                 "--quick", "--count", "8"]) == 0
    out = capsys.readouterr().out
    assert "goodput/s" in out
