"""The make-verify smoke script (benchmarks/verify.py) stays runnable:
one command proving the trace selftest and the quick bench export both
work."""

import importlib.util
import json
import os

ROOT = os.path.join(os.path.dirname(__file__), os.pardir, os.pardir)
SCRIPT = os.path.abspath(os.path.join(ROOT, "benchmarks", "verify.py"))


def _load_verify():
    spec = importlib.util.spec_from_file_location("repro_verify", SCRIPT)
    mod = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(mod)
    return mod


def test_verify_script_passes_and_writes_bench_json(tmp_path, capsys):
    from repro.core.api import registered_kernels

    mod = _load_verify()
    assert mod.main(["--out", str(tmp_path)]) == 0
    out = capsys.readouterr().out
    assert "all kernels ok" in out
    # one RPC + one fault-recovery smoke line per registered backend
    # (the real-transport backend may legitimately skip where the host
    # forbids sockets — but never silently)
    for kind in registered_kernels():
        for stage in ("rpc", "fault"):
            assert (f"verify: {stage} smoke ok on {kind}" in out
                    or f"verify: {stage} smoke skipped on {kind}" in out)
    # every registered sim backend is smoked against the global oracle
    from repro.sim.backends import registered_sim_backends

    for name in registered_sim_backends():
        assert f"verify: sim-backend smoke ok on {name}" in out
    assert ("verify: real-transport smoke ok" in out
            or "verify: real-transport smoke skipped" in out)
    assert "verify: ok" in out
    doc = json.loads((tmp_path / "BENCH_verify.json").read_text())
    assert doc["quick"] is True
    assert set(doc["benches"]) == {"E1", "E4", "E5", "E13", "E14", "E15",
                                   "E16", "E17", "S1"}


def test_verify_script_rejects_unknown_sim_backend(capsys):
    mod = _load_verify()
    assert mod.main(["--sim-backend", "turbo"]) == 2
    err = capsys.readouterr().err
    assert "turbo" in err
