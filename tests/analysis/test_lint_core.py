"""Tests for the lint engine itself: the registry, inline
suppressions, the baseline, ordering and path semantics — everything
below the individual rules (`test_lint_rules`) and the CLI
(`test_lint_cli`)."""

import json
from pathlib import Path

import pytest

from repro.analysis.lint import (
    BaselineError,
    Finding,
    LintResult,
    ModuleInfo,
    Rule,
    collect_files,
    get_rule,
    load_baseline,
    register_rule,
    registered_rules,
    run_lint,
    write_baseline,
)
from repro.analysis.lint.core import lint_modules
from repro.analysis.lint.runner import LintPathError

EXPECTED_RULES = {"DET001", "DET002", "LAY001", "LAY002", "API001", "SIM001"}


def _module(tmp_path: Path, source: str, name: str = "mod.py") -> ModuleInfo:
    p = tmp_path / name
    p.write_text(source)
    return ModuleInfo.parse(p)


# ----------------------------------------------------------------------
# registry
# ----------------------------------------------------------------------
def test_shipped_rule_set_is_registered():
    assert {r.id for r in registered_rules()} >= EXPECTED_RULES


def test_registered_rules_sorted_by_id():
    ids = [r.id for r in registered_rules()]
    assert ids == sorted(ids)


def test_get_rule_unknown_id_lists_registered():
    with pytest.raises(ValueError, match="DET001"):
        get_rule("NOPE999")


def test_duplicate_rule_id_rejected():
    det001 = get_rule("DET001")
    with pytest.raises(ValueError, match="already registered"):
        register_rule(det001)


def test_bad_severity_rejected():
    with pytest.raises(ValueError, match="severity"):
        register_rule(Rule(id="TST999", title="t", severity="fatal",
                           check=lambda m: iter(())))


# ----------------------------------------------------------------------
# inline suppressions
# ----------------------------------------------------------------------
def test_allow_comment_on_the_line_suppresses(tmp_path):
    mod = _module(tmp_path, "import random  # repro: allow[DET001]\n")
    result = lint_modules([mod], rules=[get_rule("DET001")])
    (f,) = result.findings
    assert f.suppressed and not f.active
    assert result.exit_code == 0


def test_allow_comment_on_the_line_above_suppresses(tmp_path):
    mod = _module(
        tmp_path,
        "# repro: allow[DET001] — justification prose here\n"
        "import random\n",
    )
    result = lint_modules([mod], rules=[get_rule("DET001")])
    assert result.findings[0].suppressed


def test_allow_comment_two_lines_above_does_not_suppress(tmp_path):
    mod = _module(
        tmp_path,
        "# repro: allow[DET001]\n"
        "\n"
        "import random\n",
    )
    result = lint_modules([mod], rules=[get_rule("DET001")])
    assert result.exit_code == 1


def test_allow_names_only_the_listed_rules(tmp_path):
    mod = _module(tmp_path, "import random  # repro: allow[LAY001]\n")
    result = lint_modules([mod], rules=[get_rule("DET001")])
    assert not result.findings[0].suppressed


def test_allow_accepts_a_comma_list(tmp_path):
    mod = _module(
        tmp_path, "import random  # repro: allow[DET001, SIM001]\n"
    )
    result = lint_modules([mod], rules=[get_rule("DET001")])
    assert result.findings[0].suppressed


def test_suppressed_findings_still_reported():
    """The JSON artifact records every sanctioned escape hatch."""
    result = run_lint()
    assert result.exit_code == 0
    assert len(result.suppressed) >= 4  # bench wall clock + profiler


# ----------------------------------------------------------------------
# ordering / result shape
# ----------------------------------------------------------------------
def test_findings_sorted_by_path_line_col_rule(tmp_path):
    (tmp_path / "b.py").write_text("import random\nimport uuid\n")
    (tmp_path / "a.py").write_text("import time\n")
    result = run_lint(paths=[tmp_path], rules=[get_rule("DET001")])
    keys = [(f.path, f.line, f.col, f.rule) for f in result.findings]
    assert keys == sorted(keys)
    assert result.files_scanned == 2


def test_lint_result_exit_code_gates_on_active_only():
    f_active = Finding("DET001", "error", "x.py", 1, 0, "m")
    f_supp = Finding("DET001", "error", "x.py", 2, 0, "m", suppressed=True)
    f_base = Finding("DET001", "error", "x.py", 3, 0, "m", baselined=True)
    assert LintResult([f_supp, f_base], 1, ()).exit_code == 0
    assert LintResult([f_supp, f_active], 1, ()).exit_code == 1


# ----------------------------------------------------------------------
# path semantics
# ----------------------------------------------------------------------
def test_missing_path_raises_lint_path_error(tmp_path):
    with pytest.raises(LintPathError, match="no such file or directory"):
        collect_files([tmp_path / "does-not-exist"])


def test_collect_files_dedups_and_sorts(tmp_path):
    a = tmp_path / "a.py"
    b = tmp_path / "b.py"
    a.write_text("")
    b.write_text("")
    files = collect_files([b, tmp_path, a])
    assert files == [a, b]


def test_module_info_package_for_src_repro(tmp_path):
    root = tmp_path
    target = root / "src" / "repro" / "sim" / "rng.py"
    target.parent.mkdir(parents=True)
    target.write_text("import random\n")
    mod = ModuleInfo.parse(target, root=root)
    assert mod.package == ("sim", "rng")
    assert mod.display == "src/repro/sim/rng.py"


def test_module_info_package_none_outside_src(tmp_path):
    mod = _module(tmp_path, "x = 1\n")
    assert mod.package is None


# ----------------------------------------------------------------------
# baseline
# ----------------------------------------------------------------------
def test_baseline_round_trip(tmp_path):
    path = str(tmp_path / "LINT_BASELINE.json")
    f = Finding("DET001", "error", "src/repro/x.py", 7, 0, "m")
    doc = write_baseline(path, [f])
    assert doc["entries"][0]["rule"] == "DET001"
    entries = load_baseline(path)
    assert [(e.rule, e.path) for e in entries] == [
        ("DET001", "src/repro/x.py")
    ]


def test_baselined_finding_does_not_gate(tmp_path):
    mod_path = tmp_path / "hazard.py"
    mod_path.write_text("import random\n")
    baseline = tmp_path / "base.json"
    display = ModuleInfo.parse(mod_path, root=tmp_path).display
    write_baseline(
        str(baseline),
        [Finding("DET001", "error", display, 1, 0, "m")],
    )
    result = run_lint(paths=[mod_path], root=tmp_path,
                      baseline_path=str(baseline),
                      rules=[get_rule("DET001")])
    assert result.exit_code == 0
    assert len(result.baselined) == 1


def test_baseline_refresh_keeps_grandfathered_findings(tmp_path):
    """--fix-baseline must not silently un-grandfather still-firing
    findings just because the old baseline masked them."""
    f = Finding("DET001", "error", "x.py", 1, 0, "m", baselined=True)
    path = str(tmp_path / "b.json")
    doc = write_baseline(path, [f], keep={("DET001", "x.py"): "kept note"})
    assert doc["entries"] == [
        {"rule": "DET001", "path": "x.py", "note": "kept note"}
    ]


def test_baseline_refresh_drops_suppressed_findings(tmp_path):
    f = Finding("DET001", "error", "x.py", 1, 0, "m", suppressed=True)
    doc = write_baseline(str(tmp_path / "b.json"), [f])
    assert doc["entries"] == []


def test_baseline_entry_without_note_rejected(tmp_path):
    path = tmp_path / "b.json"
    path.write_text(json.dumps({
        "schema": "repro.lint-baseline",
        "schema_version": 1,
        "entries": [{"rule": "DET001", "path": "x.py", "note": "  "}],
    }))
    with pytest.raises(BaselineError, match="note"):
        load_baseline(str(path))


def test_baseline_wrong_schema_rejected(tmp_path):
    path = tmp_path / "b.json"
    path.write_text(json.dumps({"schema": "other", "schema_version": 1,
                                "entries": []}))
    with pytest.raises(BaselineError, match="schema"):
        load_baseline(str(path))


def test_missing_baseline_grandfathers_nothing(tmp_path):
    assert load_baseline(str(tmp_path / "absent.json")) == []


def test_shipped_baseline_is_empty():
    """Every true positive in the tree was fixed, not grandfathered."""
    from repro.analysis.lint.runner import lint_repo_root

    entries = load_baseline(str(lint_repo_root() / "LINT_BASELINE.json"))
    assert entries == []
