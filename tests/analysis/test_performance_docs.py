"""docs/PERFORMANCE.md is a contract: every symbol, CLI flag and
metric named in its tables must exist in the code, the `bench`
parser, or the committed baselines, and the before/after table must
match what `BENCH_PR1.json` / `BENCH_PR7.json` actually say — so the
performance book cannot drift from the hot path it describes."""

import fnmatch
import json
import re
from pathlib import Path

from repro.obs.bench import DEFAULT_BENCH_FILENAME
from repro.obs.compare import DEFAULT_THRESHOLD, DEFAULT_WALL_THRESHOLD

ROOT = Path(__file__).resolve().parents[2]
DOC = ROOT / "docs" / "PERFORMANCE.md"
CLI = ROOT / "src" / "repro" / "cli.py"
CODE_DIRS = ("src", "tests", "examples", "benchmarks")


def _codebase_blob() -> str:
    chunks = []
    for d in CODE_DIRS:
        for path in (ROOT / d).rglob("*.py"):
            chunks.append(path.read_text())
    return "\n".join(chunks)


def _bench_keys() -> set:
    keys = set()
    for name in ("BENCH_PR1.json", "BENCH_PR7.json"):
        with open(ROOT / name) as fh:
            for bench in json.load(fh)["benches"].values():
                keys.update(bench)
    return keys


def _documented_names() -> set:
    """Backticked tokens from the first column of every table row."""
    names = set()
    for line in DOC.read_text().splitlines():
        if not line.startswith("| `"):
            continue
        first_cell = line.split("|")[1]
        names.update(re.findall(r"`([^`]+)`", first_cell))
    return names


def test_doc_exists_and_every_documented_name_resolves():
    assert DOC.exists()
    blob = _codebase_blob()
    cli_src = CLI.read_text()
    bench_keys = _bench_keys()
    strip = re.compile(r"[^\w.*-]")  # `--compare OLD NEW` -> `--compare`
    missing = []
    for name in sorted(_documented_names()):
        symbol = strip.split(name)[0]
        if not symbol:
            continue
        if symbol.startswith("--"):
            ok = symbol in cli_src
        elif "*" in symbol:
            ok = any(fnmatch.fnmatch(k, symbol) for k in bench_keys)
        elif symbol in bench_keys:
            ok = True
        else:
            ok = symbol.lstrip("-_") in blob or symbol in blob
        if not ok:
            missing.append(name)
    assert not missing, f"documented but absent from the code: {missing}"


def test_doc_covers_every_compare_flag_and_the_defaults():
    text = DOC.read_text()
    for flag in ("--compare", "--threshold", "--wall-threshold", "--json"):
        assert flag in text, f"compare flag {flag} missing from the doc"
        assert flag in CLI.read_text()
    # documented defaults match the shipped ones
    assert f"{DEFAULT_THRESHOLD:.2f}" in text
    assert f"{DEFAULT_WALL_THRESHOLD:.2f}" in text


def test_before_after_table_matches_the_committed_baselines():
    """Each `| metric | bench | old | new | ... |` row must agree with
    the two committed baseline documents (to the table's precision)."""
    docs = {}
    for name in ("BENCH_PR1.json", "BENCH_PR7.json"):
        with open(ROOT / name) as fh:
            docs[name] = json.load(fh)["benches"]
    rows = 0
    for line in DOC.read_text().splitlines():
        m = re.match(
            r"\| `([\w]+)` \| (E\d+|S1) \| ([\d,.]+) \| ([\d,.]+) \|", line
        )
        if not m:
            continue
        metric, bench, old_s, new_s = m.groups()
        rows += 1
        for doc_name, shown in (("BENCH_PR1.json", old_s),
                                ("BENCH_PR7.json", new_s)):
            actual = docs[doc_name][bench][metric]
            stated = float(shown.replace(",", ""))
            assert abs(stated - actual) <= max(abs(actual) * 0.01, 5e-4), (
                f"{metric}: doc says {stated}, {doc_name} says {actual}"
            )
    assert rows >= 6, "the before/after table went missing"


def test_doc_names_the_baselines_and_the_gate_tests():
    text = DOC.read_text()
    assert DEFAULT_BENCH_FILENAME in text  # BENCH_PR7.json, the baseline
    assert "BENCH_PR1.json" in text        # the old trajectory point
    assert "repro.bench-compare" in text
    assert "test_ci_perf_gate_fails_a_deliberately_slowed_codec" in text
    assert "passthrough=True" in text      # the chicken switch is documented
    assert "ProtocolViolation" in text     # lazy decode's error timing


def test_doc_is_linked_from_readme_and_api():
    assert "PERFORMANCE.md" in (ROOT / "README.md").read_text()
    assert "PERFORMANCE.md" in (ROOT / "docs" / "API.md").read_text()
