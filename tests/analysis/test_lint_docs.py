"""docs/LINT.md is a contract: the rule catalog must cover the
registered rule set — shallow *and* whole-program — exactly, every
documented token must exist in the codebase, and the docs that
advertise the pass must actually link it — so the doc cannot drift
from the linter."""

import re
from pathlib import Path

from repro.analysis.flow import registered_deep_rules
from repro.analysis.lint import registered_rules

ROOT = Path(__file__).resolve().parents[2]
DOC = ROOT / "docs" / "LINT.md"
CODE_DIRS = ("src", "tests", "examples", "benchmarks")


def _all_rules():
    return tuple(registered_rules()) + tuple(registered_deep_rules())


def _codebase_blob() -> str:
    chunks = []
    for d in CODE_DIRS:
        for path in (ROOT / d).rglob("*.py"):
            chunks.append(path.read_text())
    return "\n".join(chunks)


def _documented_names() -> set:
    """Backticked tokens from the first column of every table row."""
    names = set()
    for line in DOC.read_text().splitlines():
        if not line.startswith("| `"):
            continue
        first_cell = line.split("|")[1]
        names.update(re.findall(r"`([^`]+)`", first_cell))
    return names


def test_doc_catalog_covers_the_registry_exactly():
    assert DOC.exists()
    documented = _documented_names()
    registered = {r.id for r in _all_rules()}
    assert documented == registered, (
        f"docs/LINT.md catalog and the rule registry drifted: "
        f"undocumented={sorted(registered - documented)} "
        f"stale={sorted(documented - registered)}"
    )


def test_every_documented_name_appears_in_codebase():
    blob = _codebase_blob()
    missing = [n for n in sorted(_documented_names()) if n not in blob]
    assert not missing, f"documented but absent from the code: {missing}"


def test_doc_states_the_workflows():
    text = DOC.read_text()
    assert "repro: allow[" in text  # the suppression syntax
    assert "--fix-baseline" in text
    assert "LINT_BASELINE.json" in text
    assert "repro.lint" in text  # the JSON schema name
    assert "--json" in text
    assert "exits 2" in text or "exit 2" in text.lower()


def test_doc_severity_claims_match_registry():
    text = DOC.read_text()
    for r in _all_rules():
        assert f"| `{r.id}` | {r.severity} |" in text, (
            f"{r.id}: catalog row must state severity {r.severity!r}"
        )


def test_doc_is_linked_from_readme_and_api():
    assert "LINT.md" in (ROOT / "README.md").read_text()
    assert "LINT.md" in (ROOT / "docs" / "API.md").read_text()
