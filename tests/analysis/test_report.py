"""Unit tests for the report-table formatter."""

import math

import pytest

from repro.analysis.report import Table, _fmt, paper_vs_measured


def test_fmt_scalars():
    assert _fmt(None) == "—"
    assert _fmt(float("nan")) == "—"
    assert _fmt(42) == "42"
    assert _fmt("text") == "text"
    assert _fmt(3.14159) == "3.14"
    assert _fmt(2.0) == "2"
    assert _fmt(123456.0) == "1.23e+05"
    assert _fmt(0.0001) == "0.0001"


def test_table_rejects_wrong_arity():
    t = Table("t", ["a", "b"])
    with pytest.raises(ValueError):
        t.add(1)


def test_table_renders_aligned_columns():
    t = Table("title", ["name", "value"])
    t.add("short", 1)
    t.add("a-much-longer-name", 123456)
    text = t.render()
    lines = text.splitlines()
    assert lines[0] == "title"
    assert lines[1] == "====="
    # all body lines have equal width
    widths = {len(l) for l in lines[2:]}
    assert len(widths) == 1
    assert "a-much-longer-name" in text


def test_paper_vs_measured_columns():
    t = paper_vs_measured("x", [("latency", 57, 56.77, "ok")], ["note"])
    assert t.columns == ["quantity", "paper", "measured", "note"]
    assert "56.77" in t.render()
    # a row shorter than the column set is rejected
    with pytest.raises(ValueError):
        paper_vs_measured("x", [("latency", 57)], ["note"])


def test_paper_vs_measured_basic():
    t = paper_vs_measured("t", [("a", 1, 2), ("b", None, 0.5)])
    text = t.render()
    assert "—" in text and "0.5" in text
