"""Calibration guard: the executed protocols must keep reproducing the
paper's end-to-end numbers (within tolerance).

If a protocol change alters message counts or critical paths, these
tests catch the drift — they are the contract between DESIGN.md §4 and
the simulators.
"""

import pytest

from repro.analysis.costmodel import PAPER
from repro.workloads.rpc import raw_charlotte_rpc, run_rpc_workload


def test_charlotte_raw_rpc_0_bytes():
    r = raw_charlotte_rpc(0, count=5)
    assert r.mean_ms == pytest.approx(PAPER["charlotte.raw.rpc0"], rel=0.05)


def test_charlotte_raw_rpc_1000_bytes():
    r = raw_charlotte_rpc(1000, count=5)
    assert r.mean_ms == pytest.approx(PAPER["charlotte.raw.rpc1000"], rel=0.05)


def test_charlotte_lynx_rpc_0_bytes():
    r = run_rpc_workload("charlotte", 0, count=5)
    assert r.mean_ms == pytest.approx(PAPER["charlotte.lynx.rpc0"], rel=0.05)


def test_charlotte_lynx_rpc_1000_bytes():
    r = run_rpc_workload("charlotte", 1000, count=5)
    assert r.mean_ms == pytest.approx(PAPER["charlotte.lynx.rpc1000"], rel=0.05)


def test_lynx_slower_than_raw_kernel_calls():
    """§3.3: the LYNX runtime adds measurable overhead over the bare
    kernel calls (57 vs 55, 65 vs 60)."""
    raw = raw_charlotte_rpc(0, count=5).mean_ms
    lynx = run_rpc_workload("charlotte", 0, count=5).mean_ms
    assert raw < lynx < raw + 5.0


def test_chrysalis_lynx_rpc_0_bytes():
    r = run_rpc_workload("chrysalis", 0, count=5)
    assert r.mean_ms == pytest.approx(PAPER["chrysalis.lynx.rpc0"], rel=0.08)


def test_chrysalis_lynx_rpc_1000_bytes():
    r = run_rpc_workload("chrysalis", 1000, count=5)
    assert r.mean_ms == pytest.approx(PAPER["chrysalis.lynx.rpc1000"], rel=0.08)


def test_chrysalis_order_of_magnitude_faster_than_charlotte():
    """§5.3: "Message transmission times are also faster on the
    Butterfly, by more than an order of magnitude." """
    char = run_rpc_workload("charlotte", 0, count=5).mean_ms
    chry = run_rpc_workload("chrysalis", 0, count=5).mean_ms
    assert char / chry > 10.0


def test_soda_three_times_faster_small_messages():
    """§4.3 fn 2: "for small messages SODA was three times as fast as
    Charlotte"."""
    char = run_rpc_workload("charlotte", 0, count=5).mean_ms
    soda = run_rpc_workload("soda", 0, count=5).mean_ms
    ratio = char / soda
    assert 2.6 < ratio < 3.4


def test_soda_charlotte_breakeven_between_1k_and_2k():
    """§4.3 fn 2: "The figures break even somewhere between 1K and 2K
    bytes." """
    lo, hi = None, None
    for nbytes in (1024, 1536, 2048):
        char = run_rpc_workload("charlotte", nbytes, count=3).mean_ms
        soda = run_rpc_workload("soda", nbytes, count=3).mean_ms
        if soda < char:
            lo = nbytes  # SODA still ahead here
        elif hi is None:
            hi = nbytes  # Charlotte ahead from here on
    assert lo is not None and hi is not None and lo < hi


def test_chrysalis_tuned_improvement_in_paper_band():
    """§5.3: tuning "likely to improve both figures by 30 to 40%" —
    checked on the 0-byte figure (the 1000-byte figure is copy-bound
    and improves less; EXPERIMENTS.md discusses)."""
    base = run_rpc_workload("chrysalis", 0, count=5).mean_ms
    tuned = run_rpc_workload("chrysalis", 0, count=5, tuned=True).mean_ms
    improvement = (base - tuned) / base
    assert 0.30 <= improvement <= 0.40
