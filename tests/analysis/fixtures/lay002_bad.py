"""LAY002 seed: a capability read no backend declares.

Only parsed by the lint pass.  ``retries_forever`` is not a field of
`repro.core.ports.KernelCapabilities`, so conditioning on it is a
semantic divergence the conformance suite cannot see.
"""


def pick_strategy(profile):
    if profile.capabilities.retries_forever:
        return "wait"
    return "failover"


def fine(profile):
    # a declared capability: not a violation
    return profile.capabilities.recovery_placement
