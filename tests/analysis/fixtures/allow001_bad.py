"""Seeded ALLOW001 violation: a suppression that outlived its finding.

The allow below names SIM001, but nothing on the covered lines
compares simulated timestamps any more — the escape hatch has rotted
and must be deleted, not left to re-arm silently."""

PI_MS = 3.14  # repro: allow[SIM001] stale: the equality this covered is gone
