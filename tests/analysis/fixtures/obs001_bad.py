"""Seeded OBS001 violations: unbounded raw-sample accumulation."""

from collections import deque

#: module-level raw-sample store — grows for the whole process
ALL_SAMPLES = []

BOUNDED = deque(maxlen=100)  # fine: bounded ring


def note(value):
    ALL_SAMPLES.append(value)  # OBS001: unbounded module-level list
    BOUNDED.append(value)  # fine


class LeakyRecorder:
    def __init__(self):
        self.samples = []
        self.ring = deque(maxlen=16)
        self.count = 0

    def record(self, value):
        self.samples.append(value)  # OBS001: raw retention per sample
        self.ring.append(value)  # fine: bounded
        self.count += 1

    def drain(self):
        # not a hot method: result staging lists are fine here
        out = []
        out.append(self.count)
        return out
