"""A fixture every rule must pass: ordered iteration, tolerance
comparison, capability reads on declared fields, the boundary crossed
only through the registry.  Only parsed by the lint pass."""

from repro.core.ports import kernel_profile, registered_kernels


def placements():
    out = {}
    for kind in registered_kernels():  # a list: ordered
        out[kind] = kernel_profile(kind).capabilities.recovery_placement
    return out


def drain(queue, deliver):
    for msg in sorted(queue, key=lambda m: m.seq):
        deliver(msg)


def near(t0, t1, eps=1e-9):
    return abs(t1 - t0) < eps
