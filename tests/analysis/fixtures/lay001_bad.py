"""LAY001 seed: module-level imports that bypass repro.core.ports.

Only parsed by the lint pass — importing this file would work (the
modules exist) but the point is that the *lint* forbids it: this
file's name declares no kernel, so both imports cross the boundary.
"""

from typing import TYPE_CHECKING

import repro.soda.kernel  # noqa: F401

if TYPE_CHECKING:  # a typing-only cycle is still a layering cycle
    from repro.charlotte.kernel import CharlotteKernel  # noqa: F401


def make_kernel(engine):
    return repro.soda.kernel.SodaKernel(engine)
