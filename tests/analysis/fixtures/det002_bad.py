"""DET002 seed: set iteration feeding scheduling decisions.

Only parsed by the lint pass; a fixture file has no package under
``src/repro``, so DET002 treats it as order-sensitive.
"""


def deliver_all(pending, deliver):
    # set iteration order depends on hash values — the delivery
    # schedule diverges between same-seed runs
    for msg in set(pending):
        deliver(msg)


def snapshot(waiters):
    return list({w.name for w in waiters})


def merge(a, b):
    return [x for x in a.union(b)]
