"""SIM003-clean twin: identical post shapes, but every constant-
foldable delay is at or above the registered floor, and one delay is
runtime-computed (no provable bound), which must never fire."""

BASE_MS = 0.5
JITTER_MS = 0.05


class FixtureLink:
    def __init__(self, engine, access_ms=0.5):
        self.engine = engine
        self.access_ms = access_ms
        self._register_floor()

    def _register_floor(self):
        self.engine.note_link_floor(self.min_latency_ms)

    @property
    def min_latency_ms(self):
        return self.access_ms


class ShardClient:
    def __init__(self, eng, rng):
        self._post = eng.post
        self._uniform = rng.uniform

    def send_direct(self, eng, target):
        eng.post(target, BASE_MS, "req")  # exactly the floor: legal

    def send_aliased(self, target):
        delay = BASE_MS + self._uniform(0.0, JITTER_MS)  # bound 0.5
        self._post(target, delay, "req")

    def send_measured(self, eng, target, measured_ms):
        eng.post(target, measured_ms, "req")  # unfoldable: never fires
