"""Seeded NET001 violations: blocking calls inside coroutines.

`handler` blocks three ways: a direct socket ``sendall``, a direct
``time.sleep``, and — the case only a call graph can see — a helper
(`_flush_all`) that blocks two frames down."""

import asyncio
import time


def _drain(sock):
    sock.sendall(b"flushed")  # blocking socket IO


def _flush_all(socks):
    for s in socks:
        _drain(s)


async def handler(sock, socks):
    time.sleep(0.01)  # direct block
    sock.sendall(b"header")  # direct block
    _flush_all(socks)  # transitive block through _drain
    await asyncio.sleep(0)
