"""Seeded SHARD001 violations: forked workers writing shared state.

`spawn` forks `_worker_main` as a `Process` target, and `_worker_main`
reaches `_record` and `_bump`; between them they hit every write class
the rule knows: a subscript write and a mutator call on a module-level
container, a `global` rebind, and a class-attribute write."""

import multiprocessing

SHARED_COUNTS = {}
SHARED_LOG = []
TOTAL = 0


class Worker:
    generation = 0

    def run_once(self):
        Worker.generation = Worker.generation + 1  # class-attr write


def _record(kind):
    SHARED_COUNTS[kind] = SHARED_COUNTS.get(kind, 0) + 1  # subscript write
    SHARED_LOG.append(kind)  # mutator call on module-level list


def _bump():
    global TOTAL
    TOTAL += 1  # global rebind


def _worker_main(conn):
    _record("event")
    _bump()
    w = Worker()
    w.run_once()


def spawn():
    ctx = multiprocessing.get_context("fork")
    proc = ctx.Process(target=_worker_main, args=(None,), daemon=True)
    proc.start()
    return proc
