"""NET001-clean twin: the same work done legally — awaited async IO,
and the genuinely blocking helper handed to an executor, which is the
sanctioned escape."""

import asyncio


def _drain(sock):
    sock.sendall(b"flushed")


async def handler(reader, writer, loop, sock):
    data = await reader.read(64)
    writer.write(data)
    await writer.drain()
    await loop.run_in_executor(None, _drain, sock)  # sanctioned escape
    await asyncio.sleep(0)
