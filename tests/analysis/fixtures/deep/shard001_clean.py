"""SHARD001-clean twin: the same fork shape, but every write lands on
state the worker owns — locals and instance attributes — so no
finding may fire."""

import multiprocessing


class Worker:
    def __init__(self):
        self.generation = 0
        self.counts = {}

    def run_once(self):
        self.generation += 1  # instance state: each fork owns its own
        self.counts["event"] = self.counts.get("event", 0) + 1


def _worker_main(conn):
    log = []
    log.append("start")  # local container: not shared
    w = Worker()
    w.run_once()
    conn.send(("done", len(log)))


def spawn(conn):
    ctx = multiprocessing.get_context("fork")
    proc = ctx.Process(target=_worker_main, args=(conn,), daemon=True)
    proc.start()
    return proc
