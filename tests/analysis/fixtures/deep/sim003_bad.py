"""Seeded SIM003 violations: post delays provably below the floor.

`FixtureLink` registers a 0.5ms link floor the way `NetworkModel`
subclasses do (``_register_floor`` in ``__init__``, folded from the
parameter default), and both post sites below schedule cross-shard
events with constant-foldable delays under it — one through a direct
``.post`` call, one through the scale workload's self-bound alias
idiom."""

FAST_MS = 0.01
JITTER_MS = 0.05


class FixtureLink:
    def __init__(self, engine, access_ms=0.5):
        self.engine = engine
        self.access_ms = access_ms
        self._register_floor()

    def _register_floor(self):
        self.engine.note_link_floor(self.min_latency_ms)

    @property
    def min_latency_ms(self):
        return self.access_ms


class ShardClient:
    def __init__(self, eng, rng):
        self._post = eng.post  # the hot-path alias idiom
        self._uniform = rng.uniform

    def send_direct(self, eng, target):
        eng.post(target, FAST_MS, "req")  # 0.01 < 0.5: provably early

    def send_aliased(self, target):
        # lower bound folds to 0.1 + 0.0 = 0.1 < 0.5
        delay = 0.1 + self._uniform(0.0, JITTER_MS)
        self._post(target, delay, "req")
