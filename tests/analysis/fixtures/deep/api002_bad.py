"""Seeded API002 violation: the exhausted-recovery signal dies in a
broad handler two calls from the raise.  API001 (per-file) cannot see
this — no handler names the exception."""


class RecoveryExhausted(Exception):
    pass


def _give_up():
    raise RecoveryExhausted("no reply after retries")


def _connect_once():
    return _give_up()


def run_workload():
    try:
        return _connect_once()
    except Exception:  # swallows RecoveryExhausted from _give_up
        return None
