"""API002-clean twin: the same chain, but every broad handler keeps
the signal observable — one records a ``recovery.*`` metric, one
re-raises — and one call site is guarded by an inner handler that
catches the exception by name (API001's jurisdiction, not ours)."""


class RecoveryExhausted(Exception):
    pass


def _give_up():
    raise RecoveryExhausted("no reply after retries")


def _connect_once():
    return _give_up()


def run_counted(metrics):
    try:
        return _connect_once()
    except Exception:
        metrics.count("recovery.exhausted_swallowed")
        return None


def run_reraising():
    try:
        return _connect_once()
    except Exception:
        raise


def run_inner_guarded(metrics):
    try:
        try:
            return _connect_once()
        except RecoveryExhausted:
            metrics.count("recovery.exhausted")
            return None
    except Exception:  # can no longer see the signal: inner took it
        return -1
