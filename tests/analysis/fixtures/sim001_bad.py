"""SIM001 seed: float equality on simulated timestamps.

Only parsed by the lint pass.  Simulated instants are accumulated
floats; exact equality is a coincidence of one cost profile.
"""


def same_instant(t0, t1):
    return t0 == t1


def still_waiting(msg, now):
    return msg.sent_at != now


def fine(t0, t1, eps=1e-9):
    # tolerance comparison: not a violation
    return abs(t1 - t0) < eps
