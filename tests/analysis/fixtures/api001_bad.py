"""API001 seed: the hint from §4.1, silently swallowed.

Only parsed by the lint pass.  The first handler neither re-raises
nor records a ``recovery.*`` metric; the second does, and must not
be flagged.
"""

from repro.core.api import RecoveryExhausted


def swallow(op):
    try:
        op()
    except RecoveryExhausted:
        pass  # the network misbehaved and nobody will ever know


def keeps_signal(op, metrics):
    try:
        op()
    except RecoveryExhausted:
        metrics.count("recovery.give_ups")
