"""SIM002 seed: engines constructed directly instead of through the
`repro.sim.backends` registry.  Only parsed by the lint pass.

A direct construction pins the caller to one engine implementation,
so the workload silently cannot run on the sharded backends.
"""

from repro.sim.engine import Engine


def bespoke_loop():
    eng = Engine()
    eng.schedule(1.0, print, "tick")
    return eng.run()


def bespoke_sharded(backends):
    # the dotted form is the same violation
    return backends.sharded.ShardedParallelEngine(shards=4)


def fine():
    from repro.sim.backends import make_engine

    # the registry is the sanctioned constructor: not a violation
    return make_engine("sharded-serial", shards=4)
