"""DET001 seed: ambient wall-clock and entropy reads.

Never imported by the suite — only parsed by the lint pass, which
must flag every hazard below.
"""

import random
import time
from uuid import uuid4  # noqa: F401  (the import itself is the hazard)


def jittered_delay(base_ms):
    # entropy outside repro.sim.rng: different schedule every run
    return base_ms * (1.0 + random.random())


def stamp():
    # the host clock leaks into simulated state
    return time.time()


def allocator_order(events):
    # id() is an address: sorted order is an accident of the allocator
    return sorted(events, key=id)
