"""docs/OBSERVABILITY.md is a contract: every event/metric name its
vocabulary tables document must appear in the codebase (ISSUE 1
acceptance criterion), so the doc cannot drift from the
instrumentation."""

import re
from pathlib import Path

ROOT = Path(__file__).resolve().parents[2]
DOC = ROOT / "docs" / "OBSERVABILITY.md"
CODE_DIRS = ("src", "tests", "examples", "benchmarks")


def _codebase_blob() -> str:
    chunks = []
    for d in CODE_DIRS:
        for path in (ROOT / d).rglob("*.py"):
            chunks.append(path.read_text())
    return "\n".join(chunks)


def _documented_names() -> set:
    """Backticked tokens from the first column of every table row."""
    names = set()
    for line in DOC.read_text().splitlines():
        if not line.startswith("| `"):
            continue
        first_cell = line.split("|")[1]
        names.update(re.findall(r"`([^`]+)`", first_cell))
    return names


def test_doc_exists_with_vocabulary_tables():
    assert DOC.exists()
    names = _documented_names()
    assert len(names) > 60  # the full §3.2.1-and-beyond vocabulary
    assert "runtime.unwanted" in names
    assert "wire.bytes" in names
    assert "rpc.roundtrip" in names


def test_every_documented_name_appears_in_codebase():
    blob = _codebase_blob()
    missing = []
    for name in sorted(_documented_names()):
        # `wire.messages.*` documents a family completed at runtime;
        # its stable literal in source is the dotted prefix
        token = name.split("(")[0].strip().rstrip("*")
        if not token or token in blob:
            continue
        parts = token.rstrip(".").split(".")
        while len(parts) > 1:
            parts = parts[:-1]
            if ".".join(parts) + "." in blob:
                break
        else:
            missing.append(name)
    assert not missing, f"documented but absent from the code: {missing}"
