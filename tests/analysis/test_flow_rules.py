"""Contract tests for the whole-program (`--deep`) rules: every deep
rule fires on its seeded fixture pair under
``tests/analysis/fixtures/deep/`` and stays silent on the clean twin;
ALLOW001 convicts stale suppressions without convicting allows that
cover rules which did not run; and the shipped tree is deep-clean
with an empty baseline — the PR's acceptance bar, machine-checked."""

from pathlib import Path

import pytest

from repro.analysis.flow import (
    build_program,
    get_deep_rule,
    registered_deep_rules,
)
from repro.analysis.lint import ModuleInfo, get_rule, run_lint
from repro.analysis.lint.core import lint_modules

FIXTURES = Path(__file__).resolve().parent / "fixtures"
DEEP = FIXTURES / "deep"
REPO = Path(__file__).resolve().parents[2]

#: rule id -> fixture stem and the number of distinct seeded hazards
DEEP_RULE_FIXTURES = {
    "SHARD001": ("shard001", 4),
    "SIM003": ("sim003", 2),
    "NET001": ("net001", 3),
    "API002": ("api002", 1),
}


def _deep_findings(stem, kind, rule_id):
    mod = ModuleInfo.parse(DEEP / f"{stem}_{kind}.py")
    prog = build_program([mod])
    return list(get_deep_rule(rule_id).run(prog))


@pytest.mark.parametrize(
    "rule_id,stem,count",
    sorted((r, s, c) for r, (s, c) in DEEP_RULE_FIXTURES.items()),
)
def test_deep_rule_fires_on_its_fixture(rule_id, stem, count):
    findings = _deep_findings(stem, "bad", rule_id)
    assert len(findings) == count
    assert all(f.rule == rule_id for f in findings)
    assert all(f.active for f in findings)


@pytest.mark.parametrize(
    "rule_id,stem",
    sorted((r, s) for r, (s, _) in DEEP_RULE_FIXTURES.items()),
)
def test_deep_rule_passes_clean_fixture(rule_id, stem):
    assert _deep_findings(stem, "clean", rule_id) == []


def test_registry_matches_the_fixture_table():
    assert {r.id for r in registered_deep_rules()} == set(
        DEEP_RULE_FIXTURES
    )
    for r in registered_deep_rules():
        assert r.scope == "program"
        assert r.severity == "error"


def test_deep_rules_all_fire_through_lint_modules():
    """The engine path: deep findings flow through the same result
    object, counts, and exit code as shallow ones."""
    mods = [
        ModuleInfo.parse(DEEP / f"{stem}_bad.py")
        for stem, _ in sorted(DEEP_RULE_FIXTURES.values())
    ]
    result = lint_modules(
        mods,
        rules=[],
        program=build_program(mods),
        deep_rules=registered_deep_rules(),
    )
    assert result.deep
    assert result.exit_code == 1
    assert result.fired() == set(DEEP_RULE_FIXTURES)
    assert len(result.findings) == sum(
        c for _, c in DEEP_RULE_FIXTURES.values()
    )


def test_deep_findings_honour_inline_allow(tmp_path):
    src = DEEP / "net001_bad.py"
    lines = src.read_text().splitlines()
    patched = []
    for line in lines:
        if "time.sleep" in line and not line.lstrip().startswith("#"):
            line += "  # repro: allow[NET001] fixture escape"
        patched.append(line)
    f = tmp_path / "net001_allowed.py"
    f.write_text("\n".join(patched) + "\n")
    mod = ModuleInfo.parse(f)
    findings = list(
        get_deep_rule("NET001").run(build_program([mod]))
    )
    assert len(findings) == 3
    sleeps = [x for x in findings if "time.sleep" in x.message]
    assert sleeps and all(x.suppressed for x in sleeps)
    # the allow reaches one line down by design, so the sendall on the
    # next line is suppressed too; the transitive chain stays active
    active = [x for x in findings if x.active]
    assert len(active) == 1


# --- SIM003 specifics -------------------------------------------------

def test_sim003_names_the_floor_and_the_bound():
    findings = _deep_findings("sim003", "bad", "SIM003")
    for f in findings:
        assert "floor" in f.message
        assert "0.5" in f.message  # the fixture link's min_latency_ms


def test_sim003_silent_when_no_floor_registered(tmp_path):
    """Without any `_register_floor` class in the program and without
    the engine default in sight, there is no bar to be under."""
    f = tmp_path / "lonely.py"
    f.write_text(
        "class Client:\n"
        "    def __init__(self, eng):\n"
        "        self._post = eng.post\n"
        "    def send(self, t):\n"
        "        self._post(t, 0.0001, 'm')\n"
    )
    mod = ModuleInfo.parse(f)
    assert list(get_deep_rule("SIM003").run(build_program([mod]))) == []


# --- ALLOW001: the escape hatch polices itself ------------------------

def test_stale_allow_fires_via_full_rule_set():
    result = run_lint(paths=[FIXTURES / "allow001_bad.py"], root=REPO)
    assert result.exit_code == 1
    assert "ALLOW001" in result.fired()
    [finding] = [f for f in result.findings if f.rule == "ALLOW001"]
    assert "SIM001" in finding.message
    assert finding.active


def test_used_allow_is_not_convicted(tmp_path):
    """An allow whose rule genuinely fires on that line is earning its
    keep: SIM001 reports the site as suppressed, ALLOW001 stays out."""
    f = tmp_path / "used.py"
    f.write_text(
        "def late(sent_at, t0):\n"
        "    return sent_at == t0  # repro: allow[SIM001] probe\n"
    )
    mod = ModuleInfo.parse(f)
    result = lint_modules([mod])
    assert "ALLOW001" not in result.fired()
    assert any(
        f.rule == "SIM001" and f.suppressed for f in result.findings
    )


def test_allow_for_rule_that_did_not_run_is_not_judged(tmp_path):
    """A shallow-only run must not convict an allow that covers a deep
    rule — the rule never ran, so the allow's finding had no chance to
    fire.  The same file under a deep run *is* judged."""
    f = tmp_path / "deep_tag.py"
    f.write_text(
        "X = 1  # repro: allow[NET001] covers a --deep finding\n"
    )
    mod = ModuleInfo.parse(f)
    shallow = lint_modules([mod])
    assert "ALLOW001" not in shallow.fired()
    deep = lint_modules(
        [mod],
        program=build_program([mod]),
        deep_rules=registered_deep_rules(),
    )
    assert "ALLOW001" in deep.fired()


def test_subset_run_without_allow_rule_skips_the_post_pass(tmp_path):
    f = tmp_path / "tagged.py"
    f.write_text("X = 1  # repro: allow[DET001] stale\n")
    mod = ModuleInfo.parse(f)
    result = lint_modules([mod], rules=[get_rule("DET001")])
    assert not result.findings
    assert result.exit_code == 0


def test_docstring_mention_of_allow_syntax_is_ignored(tmp_path):
    f = tmp_path / "prose.py"
    f.write_text(
        '"""Suppress with ``# repro: allow[DET001]`` on the line."""\n'
        "X = 1\n"
    )
    result = lint_modules([ModuleInfo.parse(f)])
    assert "ALLOW001" not in result.fired()


# --- the acceptance bar ----------------------------------------------

def test_shipped_tree_is_deep_clean():
    """`python -m repro lint --deep` over src/ must exit 0 with the
    shipped (empty) baseline — ISSUE acceptance, machine-checked."""
    result = run_lint(
        paths=[REPO / "src" / "repro"], root=REPO, deep=True
    )
    assert result.deep
    active = [f for f in result.findings if f.active]
    assert result.exit_code == 0, [f.location() for f in active]
    assert not any(f.baselined for f in result.findings)
