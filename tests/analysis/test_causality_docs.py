"""docs/CAUSALITY.md is a contract: the span vocabulary and layer
names it documents must appear in the codebase, the layer table must
cover repro.obs.causal.LAYERS exactly, and the docs that advertise it
must actually link it — so the doc cannot drift from the
instrumentation."""

import re
from pathlib import Path

from repro.obs.causal import GAP_LAYER, LAYERS

ROOT = Path(__file__).resolve().parents[2]
DOC = ROOT / "docs" / "CAUSALITY.md"
CODE_DIRS = ("src", "tests", "examples", "benchmarks")


def _codebase_blob() -> str:
    chunks = []
    for d in CODE_DIRS:
        for path in (ROOT / d).rglob("*.py"):
            chunks.append(path.read_text())
    return "\n".join(chunks)


def _documented_names() -> set:
    """Backticked tokens from the first column of every table row."""
    names = set()
    for line in DOC.read_text().splitlines():
        if not line.startswith("| `"):
            continue
        first_cell = line.split("|")[1]
        names.update(re.findall(r"`([^`]+)`", first_cell))
    return names


def test_doc_exists_with_span_vocabulary():
    assert DOC.exists()
    names = _documented_names()
    assert "SpanContext" in names
    assert "CausalGraph" in names
    for layer in LAYERS:
        assert layer in names, f"layer {layer!r} missing from the doc"


def test_every_documented_name_appears_in_codebase():
    blob = _codebase_blob()
    missing = [n for n in sorted(_documented_names()) if n not in blob]
    assert not missing, f"documented but absent from the code: {missing}"


def test_doc_states_the_algorithm_and_gap_layer():
    text = DOC.read_text()
    assert "critical-path" in text.lower()
    assert GAP_LAYER in text
    assert "figure 2" in text.lower() or "figure-2" in text.lower()
    assert "E13" in text


def test_doc_is_linked_from_observability_and_readme():
    assert "CAUSALITY.md" in (ROOT / "docs" / "OBSERVABILITY.md").read_text()
    assert "CAUSALITY.md" in (ROOT / "README.md").read_text()
