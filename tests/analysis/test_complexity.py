"""Unit tests for the code-complexity accounting (E2's instrument)."""

import pytest

import repro.charlotte.runtime
import repro.core.runtime
from repro.analysis.complexity import (
    CHARLOTTE_SPECIAL_CASES,
    analyze_module,
    charlotte_special_case_stats,
    comparison,
    runtime_package_stats,
)


def test_analyze_module_counts_are_positive_and_stable():
    a = analyze_module(repro.core.runtime)
    b = analyze_module(repro.core.runtime)
    assert a.logical_loc == b.logical_loc > 100
    assert a.branches == b.branches > 20
    assert "LynxRuntimeBase" in a.units


def test_docstrings_do_not_count_as_logical_lines():
    import types

    mod = types.ModuleType("fake")
    src = '''
def f():
    """A very long docstring.

    Many lines of prose here that must not count.
    """
    return 1
'''
    import ast as _ast
    tree = _ast.parse(src)
    from repro.analysis.complexity import _branches, _logical_lines

    # def + return = 2 statements; the docstring Expr is skipped
    assert _logical_lines(tree) == 2
    assert _branches(tree) == 0


def test_special_case_units_exist_in_source():
    """The curated special-case list must stay in sync with the
    Charlotte runtime's actual function names."""
    mod = analyze_module(repro.charlotte.runtime)
    for name in CHARLOTTE_SPECIAL_CASES:
        assert name in mod.units, name


def test_special_case_stats_nonzero():
    s = charlotte_special_case_stats()
    assert s.logical_loc > 40
    assert s.branches > 5


def test_package_stats_shape():
    for kind in ("charlotte", "soda", "chrysalis"):
        stats = runtime_package_stats(kind)
        assert stats.kernel_specific_loc > 0
        assert stats.common_loc > 0
        assert 0.0 < stats.kernel_share < 1.0
        assert stats.total_loc == stats.kernel_specific_loc + stats.common_loc


def test_comparison_reproduces_paper_ordering():
    cmp_ = comparison()
    assert (
        cmp_["chrysalis"]["kernel_specific_loc"]
        < cmp_["charlotte"]["kernel_specific_loc"]
    )
    assert 0.0 < cmp_["charlotte"]["special_case_share_of_specific"] < 1.0
