"""Tier-1 smoke of ``python -m repro bench --quick`` — keeps the
benchmark-export path from silently rotting (ISSUE 1 CI satellite)."""

import json

from repro.cli import main


def test_bench_quick_writes_valid_json(tmp_path, capsys):
    out = tmp_path / "BENCH_smoke.json"
    assert main(["bench", "--quick", "--out", str(out)]) == 0
    printed = capsys.readouterr().out
    assert "benchmark export" in printed
    assert str(out) in printed
    doc = json.loads(out.read_text())
    assert doc["schema"] == "repro.bench"
    assert doc["quick"] is True
    assert set(doc["benches"]) == {"E1", "E4", "E5", "E13", "E14", "E15",
                                   "E16", "E17", "S1"}
    assert "seed" in doc and "git_rev" in doc and "timestamp" in doc


def test_bench_only_subset(tmp_path, capsys):
    out = tmp_path / "BENCH_sub.json"
    assert main(["bench", "--quick", "--only", "S1", "--out", str(out)]) == 0
    doc = json.loads(out.read_text())
    assert list(doc["benches"]) == ["S1"]
    assert doc["benches"]["S1"]["engine_events_per_sec"] > 0


def test_bench_out_dash_writes_json_to_stdout(capsys):
    assert main(["bench", "--quick", "--only", "E5", "--out", "-"]) == 0
    printed = capsys.readouterr().out
    doc = json.loads(printed)  # stdout is exactly one JSON document
    assert list(doc["benches"]) == ["E5"]
    assert "benchmark export" not in printed  # no table mixed in


def test_bench_unknown_only_name_exits_nonzero(capsys):
    assert main(["bench", "--quick", "--only", "E99"]) == 2
    err = capsys.readouterr().err
    assert "E99" in err


def test_bench_pinned_sim_backend_restricts_the_sweep(tmp_path):
    out = tmp_path / "BENCH_backend.json"
    assert main(["bench", "--quick", "--only", "E16",
                 "--sim-backend", "sharded-serial",
                 "--out", str(out)]) == 0
    e16 = json.loads(out.read_text())["benches"]["E16"]
    assert e16["scale_serial_s1_events_per_sec"] > 0
    assert e16["scale_serial_s8_events_per_sec"] > 0
    # backends that did not run stay null, so the schema never varies
    assert e16["scale_global_s1_events_per_sec"] is None
    assert e16["scale_parallel_s8_speedup"] is None
    # only one backend ran: no cross-backend digest to compare, but the
    # selected backend must still be repeat-stable
    assert e16["scale_digest_match_s8"] is None
    assert e16["scale_repeat_stable_s8"] == 1.0


def test_bench_unknown_sim_backend_exits_nonzero(capsys):
    assert main(["bench", "--quick", "--only", "E16",
                 "--sim-backend", "turbo"]) == 2
    err = capsys.readouterr().err
    assert "turbo" in err
    assert "sharded-parallel" in err  # the registry lists valid names
