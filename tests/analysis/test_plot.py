"""Unit tests for the ASCII plotter."""

from repro.analysis.plot import ascii_plot


def test_empty_series():
    assert ascii_plot({}) == "(no data)"


def test_single_series_renders_marks_and_axes():
    out = ascii_plot({"lat": [(0, 10.0), (100, 20.0)]}, width=20, height=8)
    assert "o" in out
    assert "o lat" in out
    assert "10" in out and "20" in out
    assert "0" in out and "100" in out


def test_two_series_use_distinct_marks():
    out = ascii_plot(
        {
            "a": [(0, 0.0), (10, 10.0)],
            "b": [(0, 10.0), (10, 0.0)],
        },
        width=20,
        height=8,
    )
    assert "o a" in out and "x b" in out
    body = out.split("+")[0]
    assert "o" in body and "x" in body


def test_constant_series_does_not_divide_by_zero():
    out = ascii_plot({"flat": [(0, 5.0), (10, 5.0)]})
    assert "flat" in out


def test_crossing_curves_shape():
    """Two crossing lines must place their marks at opposite corners."""
    out = ascii_plot(
        {"up": [(0, 0.0), (100, 100.0)], "down": [(0, 100.0), (100, 0.0)]},
        width=30,
        height=10,
    )
    rows = [l for l in out.splitlines() if "|" in l]
    top, bottom = rows[0], rows[-1]
    # 'down' starts top-left; 'up' ends top-right
    left_top = top.split("|")[1][:15]
    right_top = top.split("|")[1][15:]
    assert "x" in left_top
    assert "o" in right_top


def test_labels_present():
    out = ascii_plot(
        {"s": [(0, 1.0), (1, 2.0)]}, x_label="bytes", y_label="ms"
    )
    assert "bytes" in out and out.splitlines()[0] == "ms"
