"""Per-rule contract tests: every shipped rule fires on its seeded
fixture under ``tests/analysis/fixtures/`` and stays silent on the
clean fixture and on its designated exemptions.  The fixtures are
never imported — only parsed by the lint pass."""

from pathlib import Path

import pytest

from repro.analysis.lint import ModuleInfo, get_rule, run_lint
from repro.analysis.lint.core import lint_modules

FIXTURES = Path(__file__).resolve().parent / "fixtures"
REPO = Path(__file__).resolve().parents[2]

RULE_FIXTURES = {
    "DET001": "det001_bad.py",
    "DET002": "det002_bad.py",
    "LAY001": "lay001_bad.py",
    "LAY002": "lay002_bad.py",
    "API001": "api001_bad.py",
    "SIM001": "sim001_bad.py",
    "SIM002": "sim002_bad.py",
    "OBS001": "obs001_bad.py",
}


def _lint_fixture(name, rule_id):
    mod = ModuleInfo.parse(FIXTURES / name)
    return lint_modules([mod], rules=[get_rule(rule_id)])


@pytest.mark.parametrize("rule_id,fixture", sorted(RULE_FIXTURES.items()))
def test_rule_fires_on_its_fixture(rule_id, fixture):
    result = _lint_fixture(fixture, rule_id)
    assert result.exit_code == 1
    assert result.fired() == {rule_id}


@pytest.mark.parametrize("rule_id", sorted(RULE_FIXTURES))
def test_rule_passes_the_clean_fixture(rule_id):
    result = _lint_fixture("clean.py", rule_id)
    assert result.exit_code == 0
    assert not result.findings


def test_full_rule_set_on_fixture_dir_fires_every_rule():
    result = run_lint(paths=[FIXTURES])
    assert result.fired() >= set(RULE_FIXTURES)
    assert result.exit_code == 1


# ----------------------------------------------------------------------
# rule-specific contracts beyond fire/clean
# ----------------------------------------------------------------------
def test_det001_exempts_sim_rng():
    """The one sanctioned entropy source may import random freely."""
    rng = REPO / "src" / "repro" / "sim" / "rng.py"
    mod = ModuleInfo.parse(rng, root=REPO)
    assert mod.package == ("sim", "rng")
    result = lint_modules([mod], rules=[get_rule("DET001")])
    assert not result.findings


def test_det001_finds_each_hazard_kind():
    result = _lint_fixture("det001_bad.py", "DET001")
    messages = " ".join(f.message for f in result.findings)
    assert "import of 'random'" in messages
    assert "time.time()" in messages
    assert "id()" in messages


def test_det002_only_in_order_sensitive_modules(tmp_path):
    """The same set iteration is fine in, say, an analysis module."""
    src = "def f(xs):\n    for x in set(xs):\n        yield x\n"
    root = tmp_path
    target = root / "src" / "repro" / "analysis" / "report.py"
    target.parent.mkdir(parents=True)
    target.write_text(src)
    mod = ModuleInfo.parse(target, root=root)
    assert mod.package == ("analysis", "report")
    assert not lint_modules([mod], rules=[get_rule("DET002")]).findings

    sim_target = root / "src" / "repro" / "sim" / "sched.py"
    sim_target.parent.mkdir(parents=True)
    sim_target.write_text(src)
    sim_mod = ModuleInfo.parse(sim_target, root=root)
    assert lint_modules([sim_mod], rules=[get_rule("DET002")]).findings


def test_lay001_exempts_the_kernels_own_package(tmp_path):
    src = "from repro.soda.kernel import SodaKernel  # noqa\n"
    target = tmp_path / "src" / "repro" / "soda" / "runtime.py"
    target.parent.mkdir(parents=True)
    target.write_text(src)
    mod = ModuleInfo.parse(target, root=tmp_path)
    assert mod.package == ("soda", "runtime")
    assert not lint_modules([mod], rules=[get_rule("LAY001")]).findings


def test_lay001_exempts_declared_per_kernel_glue(tmp_path):
    src = "from repro.soda.kernel import SodaKernel  # noqa\n"
    target = tmp_path / "soda_adapter.py"
    target.write_text(src)
    mod = ModuleInfo.parse(target)
    assert not lint_modules([mod], rules=[get_rule("LAY001")]).findings


def test_lay001_sees_type_checking_guards():
    """`if TYPE_CHECKING:` is not an escape hatch (module-level too)."""
    result = _lint_fixture("lay001_bad.py", "LAY001")
    lines = sorted(f.line for f in result.findings)
    assert len(lines) == 2  # the plain import AND the guarded one


def test_lay001_ignores_function_level_imports(tmp_path):
    src = ("def factory(engine):\n"
           "    from repro.soda.kernel import SodaKernel\n"
           "    return SodaKernel(engine)\n")
    target = tmp_path / "registry_glue.py"
    target.write_text(src)
    mod = ModuleInfo.parse(target)
    assert not lint_modules([mod], rules=[get_rule("LAY001")]).findings


def test_lay002_accepts_declared_capabilities():
    """The bad fixture also reads a *declared* field; only the
    undeclared one is flagged."""
    result = _lint_fixture("lay002_bad.py", "LAY002")
    assert len(result.findings) == 1
    assert "retries_forever" in result.findings[0].message


def test_api001_accepts_metric_recording_handler():
    """The fixture's second handler records recovery.give_ups."""
    result = _lint_fixture("api001_bad.py", "API001")
    assert len(result.findings) == 1


def test_api001_accepts_reraise(tmp_path):
    src = ("def f(op):\n"
           "    try:\n"
           "        op()\n"
           "    except RecoveryExhausted:\n"
           "        raise\n")
    target = tmp_path / "h.py"
    target.write_text(src)
    mod = ModuleInfo.parse(target)
    assert not lint_modules([mod], rules=[get_rule("API001")]).findings


def test_sim001_allows_tolerance_comparisons():
    """Only the == / != comparisons are flagged, not abs() < eps."""
    result = _lint_fixture("sim001_bad.py", "SIM001")
    assert len(result.findings) == 2


def test_sim002_flags_both_seeded_constructions():
    """The plain call and the dotted form, but not make_engine."""
    result = _lint_fixture("sim002_bad.py", "SIM002")
    assert len(result.findings) == 2
    messages = " ".join(f.message for f in result.findings)
    assert "Engine(...)" in messages
    assert "ShardedParallelEngine(...)" in messages


def test_sim002_exempts_the_backend_registry(tmp_path):
    """The registry package's factories are the sanctioned callers."""
    src = ("from repro.sim.engine import Engine\n"
           "def factory(profile=False):\n"
           "    return Engine(profile=profile)\n")
    target = tmp_path / "src" / "repro" / "sim" / "backends" / "__init__.py"
    target.parent.mkdir(parents=True)
    target.write_text(src)
    mod = ModuleInfo.parse(target, root=tmp_path)
    assert mod.package == ("sim", "backends")
    assert not lint_modules([mod], rules=[get_rule("SIM002")]).findings


def test_obs001_flags_exactly_the_two_seeded_sites():
    """Bounded deques and cold-path staging lists stay silent."""
    result = _lint_fixture("obs001_bad.py", "OBS001")
    assert len(result.findings) == 2
    messages = " ".join(f.message for f in result.findings)
    assert "ALL_SAMPLES" in messages
    assert "LeakyRecorder.record" in messages


def test_obs001_exempts_non_hot_methods(tmp_path):
    src = ("class Collector:\n"
           "    def __init__(self):\n"
           "        self.rows = []\n"
           "    def finish(self, row):\n"
           "        self.rows.append(row)\n")
    target = tmp_path / "c.py"
    target.write_text(src)
    mod = ModuleInfo.parse(target)
    assert not lint_modules([mod], rules=[get_rule("OBS001")]).findings


def test_obs001_respects_allow_comment(tmp_path):
    src = ("XS = []\n"
           "def f(v):\n"
           "    XS.append(v)  # repro: allow[OBS001] test corpus\n")
    target = tmp_path / "a.py"
    target.write_text(src)
    mod = ModuleInfo.parse(target)
    result = lint_modules([mod], rules=[get_rule("OBS001")])
    assert result.exit_code == 0
    assert all(f.suppressed for f in result.findings)


def test_shipped_tree_is_lint_clean():
    """The acceptance bar: `python -m repro lint src/repro` exits 0."""
    result = run_lint(paths=[REPO / "src" / "repro"], root=REPO)
    assert result.exit_code == 0, [f.location() for f in result.active]
