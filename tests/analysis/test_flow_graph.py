"""Unit tests for the whole-program graph (`repro.analysis.flow.graph`):
import resolution through re-export chains and cycles, the conservative
call graph (self-methods, cross-module calls, callbacks passed as
arguments, locally constructed instances, nested defs), reachability,
and ``__main__`` entry-point detection."""

from pathlib import Path

from repro.analysis.flow import build_program
from repro.analysis.flow.fold import fold_lower_bound
from repro.analysis.lint import ModuleInfo


def _program(tmp_path, files):
    """Write ``files`` ({relpath under src/repro: source}) and link
    them; dotted names come out as ``repro.<path>``."""
    mods = []
    for rel, src in files.items():
        target = tmp_path / "src" / "repro" / rel
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_text(src)
        mods.append(ModuleInfo.parse(target, root=tmp_path))
    return build_program(mods)


def test_module_dotted_names_and_packages(tmp_path):
    prog = _program(tmp_path, {
        "pkg/__init__.py": "",
        "pkg/impl.py": "def thing():\n    return 1\n",
    })
    assert set(prog.modules) == {"repro.pkg", "repro.pkg.impl"}
    assert prog.modules["repro.pkg"].is_package
    assert not prog.modules["repro.pkg.impl"].is_package


def test_resolution_follows_reexport_chain(tmp_path):
    prog = _program(tmp_path, {
        "pkg/__init__.py": "from repro.pkg.impl import thing\n",
        "pkg/impl.py": "def thing():\n    return 1\n",
        "user.py": (
            "from repro.pkg import thing\n"
            "def caller():\n"
            "    return thing()\n"
        ),
    })
    user = prog.modules["repro.user"]
    resolved = prog.resolve(user, "thing")
    assert resolved[0] == "func"
    assert resolved[1].qualname == "repro.pkg.impl.thing"
    caller = user.functions["caller"]
    assert [t.qualname for t in caller.callees()] == [
        "repro.pkg.impl.thing"
    ]


def test_import_cycle_terminates(tmp_path):
    """a re-exports from b, b re-exports from a: resolution of the
    never-defined symbol gives up instead of looping."""
    prog = _program(tmp_path, {
        "a.py": "from repro.b import ghost\n",
        "b.py": "from repro.a import ghost\n",
    })
    a = prog.modules["repro.a"]
    assert prog.resolve(a, "ghost") is None


def test_self_method_and_base_class_resolution(tmp_path):
    prog = _program(tmp_path, {
        "base.py": (
            "class Base:\n"
            "    def helper(self):\n"
            "        return 0\n"
        ),
        "impl.py": (
            "from repro.base import Base\n"
            "class Impl(Base):\n"
            "    def run(self):\n"
            "        return self.helper()\n"
        ),
    })
    run = prog.modules["repro.impl"].classes["Impl"].methods["run"]
    assert [t.qualname for t in run.callees()] == [
        "repro.base.Base.helper"
    ]


def test_callback_arguments_create_reference_edges(tmp_path):
    """`defer(10, self._cb)` must make _cb reachable — the scheduler
    idiom is how almost all control flow moves in this codebase."""
    prog = _program(tmp_path, {
        "sim.py": (
            "class Node:\n"
            "    def __init__(self, eng):\n"
            "        self._defer = eng.defer\n"
            "    def start(self):\n"
            "        self._defer(10, self._cb)\n"
            "    def _cb(self):\n"
            "        return 1\n"
        ),
    })
    node = prog.modules["repro.sim"].classes["Node"]
    start = node.methods["start"]
    names = {t.qualname for t in start.callees()}
    assert "repro.sim.Node._cb" in names
    reach = prog.reachable([start])
    assert any(f.qualname.endswith("._cb") for f in reach)


def test_locally_constructed_instance_resolves_methods(tmp_path):
    prog = _program(tmp_path, {
        "w.py": (
            "class Worker:\n"
            "    def run(self):\n"
            "        return 1\n"
            "def spawn():\n"
            "    w = Worker()\n"
            "    return w.run()\n"
        ),
    })
    spawn = prog.modules["repro.w"].functions["spawn"]
    names = {t.qualname for t in spawn.callees()}
    assert "repro.w.Worker.run" in names


def test_nested_defs_fold_into_parent(tmp_path):
    """A closure defined inside a function is part of that function's
    behaviour: its calls appear on the parent's edges."""
    prog = _program(tmp_path, {
        "n.py": (
            "def leaf():\n"
            "    return 1\n"
            "def parent():\n"
            "    def inner():\n"
            "        return leaf()\n"
            "    return inner\n"
        ),
    })
    parent = prog.modules["repro.n"].functions["parent"]
    assert {t.qualname for t in parent.callees()} == {"repro.n.leaf"}


def test_reachability_handles_recursion(tmp_path):
    prog = _program(tmp_path, {
        "r.py": (
            "def a():\n    return b()\n"
            "def b():\n    return a()\n"
        ),
    })
    mod = prog.modules["repro.r"]
    reach = prog.reachable([mod.functions["a"]])
    assert {f.name for f in reach} == {"a", "b"}


def test_main_guard_entry_points_detected(tmp_path):
    prog = _program(tmp_path, {
        "cli.py": (
            "def main():\n"
            "    return 0\n"
            "if __name__ == \"__main__\":\n"
            "    main()\n"
        ),
        "lib.py": "def main():\n    return 0\n",
    })
    assert len(prog.modules["repro.cli"].main_calls) == 1
    assert prog.modules["repro.lib"].main_calls == []


def test_constants_and_mutables_classified(tmp_path):
    prog = _program(tmp_path, {
        "c.py": (
            "LIMIT = 10\n"
            "REGISTRY = {}\n"
            "NAMES = list()\n"
        ),
    })
    mod = prog.modules["repro.c"]
    assert "LIMIT" in mod.constants
    assert set(mod.mutables) == {"REGISTRY", "NAMES"}


def test_fold_lower_bound_cross_module_and_uniform(tmp_path):
    prog = _program(tmp_path, {
        "consts.py": "BASE_MS = 0.3\nSCALE = 2.0\n",
        "use.py": "import repro.consts\nfrom repro.consts import BASE_MS\n",
    })
    use = prog.modules["repro.use"]
    import ast as _ast

    def fold(src):
        return fold_lower_bound(
            prog, use, _ast.parse(src, mode="eval").body
        )

    assert fold("0.5") == 0.5
    assert fold("BASE_MS") == 0.3
    assert fold("repro.consts.SCALE") == 2.0
    assert fold("BASE_MS + 0.1") == 0.4
    assert fold("BASE_MS / 2") == 0.15
    assert fold("rng.uniform(0.25, 0.75)") == 0.25
    assert fold("max(0.1, unknown)") == 0.1
    assert fold("unknown") is None
    assert fold("measured * 2") is None


def test_adhoc_files_get_stem_names(tmp_path):
    f = tmp_path / "scratch.py"
    f.write_text("def g():\n    return 1\n")
    prog = build_program([ModuleInfo.parse(f)])
    assert set(prog.modules) == {"scratch"}
