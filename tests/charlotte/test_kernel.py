"""Unit tests for the Charlotte kernel simulator (§3.1 semantics)."""

import pytest

from repro.analysis.costmodel import CostModel
from repro.charlotte.kernel import (
    CallStatus,
    CharlotteKernel,
    CompletionKind,
    Direction,
)
from repro.core.links import EndRef
from repro.core.registry import LinkRegistry
from repro.core.wire import MsgKind, WireMessage
from repro.sim.engine import Engine
from repro.sim.metrics import MetricSet
from repro.sim.network import TokenRing


@pytest.fixture
def kern():
    eng = Engine()
    metrics = MetricSet()
    costs = CostModel.default().charlotte
    ring = TokenRing(eng, metrics=metrics, access_delay_ms=costs.ring_access_ms)
    kernel = CharlotteKernel(eng, metrics, costs, ring, LinkRegistry())
    return eng, kernel


def _collect(fut, sink):
    fut.add_done_callback(lambda f: sink.append(f.value))


def _mk(kernel, a="a", b="b"):
    pa = kernel.register_process(a, 0)
    pb = kernel.register_process(b, 1)
    status, ra, rb = kernel._make_link(a)
    assert status is CallStatus.SUCCESS
    # hand side b to process b (as the cluster's create_link does)
    kernel.links[ra.link].ends[1].owner = b
    kernel.links[ra.link].ends[1].node = 1
    return pa, pb, ra, rb


def _msg(kind=MsgKind.REQUEST, seq=1, payload=b"", encs=()):
    return WireMessage(
        kind=kind, seq=seq, payload=payload, enclosures=list(encs),
        enc_total=len(encs),
    )


def test_make_link_returns_two_ends(kern):
    eng, kernel = kern
    kernel.register_process("a", 0)
    status, ra, rb = kernel._make_link("a")
    assert status is CallStatus.SUCCESS
    assert ra.link == rb.link and ra.side != rb.side


def test_send_without_receive_stays_pending(kern):
    eng, kernel = kern
    pa, pb, ra, rb = _mk(kernel)
    assert kernel._send("a", ra, _msg(), None) is CallStatus.SUCCESS
    eng.run()
    # no completion anywhere: the send is parked awaiting a match
    assert not kernel._completions["a"]
    assert not kernel._completions["b"]


def test_matched_transfer_completes_both_sides(kern):
    eng, kernel = kern
    pa, pb, ra, rb = _mk(kernel)
    kernel._send("a", ra, _msg(payload=b"data"), None)
    kernel._receive("b", rb)
    eng.run()
    (ca,) = kernel._completions["a"]
    (cb,) = kernel._completions["b"]
    assert ca.kind is CompletionKind.SEND_DONE and ca.ref == ra
    assert cb.kind is CompletionKind.RECV_DONE and cb.ref == rb
    assert cb.msg.payload == b"data"


def test_one_outstanding_activity_per_direction(kern):
    eng, kernel = kern
    pa, pb, ra, rb = _mk(kernel)
    assert kernel._send("a", ra, _msg(), None) is CallStatus.SUCCESS
    assert kernel._send("a", ra, _msg(seq=2), None) is CallStatus.BUSY
    assert kernel._receive("b", rb) is CallStatus.SUCCESS
    assert kernel._receive("b", rb) is CallStatus.BUSY


def test_cancel_unmatched_send_succeeds(kern):
    eng, kernel = kern
    pa, pb, ra, rb = _mk(kernel)
    kernel._send("a", ra, _msg(), None)
    assert kernel._cancel("a", ra, Direction.SEND) is CallStatus.SUCCESS
    # and the slot is free again
    assert kernel._send("a", ra, _msg(seq=2), None) is CallStatus.SUCCESS


def test_cancel_matched_activity_fails_too_late(kern):
    """"If B has requested an operation in the meantime, the Cancel
    will fail." (§3.2.1)"""
    eng, kernel = kern
    pa, pb, ra, rb = _mk(kernel)
    kernel._receive("b", rb)
    kernel._send("a", ra, _msg(), None)
    # match already decided, transfer scheduled
    assert kernel._cancel("b", rb, Direction.RECEIVE) is CallStatus.TOO_LATE
    assert kernel._cancel("a", ra, Direction.SEND) is CallStatus.TOO_LATE


def test_cancel_nothing_returns_not_found(kern):
    eng, kernel = kern
    pa, pb, ra, rb = _mk(kernel)
    assert kernel._cancel("a", ra, Direction.SEND) is CallStatus.NOT_FOUND


def test_send_on_foreign_end_invalid(kern):
    eng, kernel = kern
    pa, pb, ra, rb = _mk(kernel)
    assert kernel._send("b", ra, _msg(), None) is CallStatus.INVALID


def test_more_than_one_enclosure_rejected(kern):
    """The kernel constraint that drives the §3.2.2 enc protocol."""
    eng, kernel = kern
    pa, pb, ra, rb = _mk(kernel)
    _, ea, eb = kernel._make_link("a")
    _, fa, fb = kernel._make_link("a")
    msg = _msg(encs=(ea, fa))
    assert kernel._send("a", ra, msg, ea) is CallStatus.INVALID


def test_enclosure_must_match_send_argument(kern):
    eng, kernel = kern
    pa, pb, ra, rb = _mk(kernel)
    _, ea, eb = kernel._make_link("a")
    assert kernel._send("a", ra, _msg(encs=(ea,)), None) is CallStatus.INVALID
    assert kernel._send("a", ra, _msg(), ea) is CallStatus.INVALID


def test_cannot_enclose_end_of_same_link(kern):
    eng, kernel = kern
    pa, pb, ra, rb = _mk(kernel)
    assert (
        kernel._send("a", ra, _msg(encs=(ra,)), ra) is CallStatus.INVALID
    )


def test_enclosure_moves_ownership_on_delivery(kern):
    eng, kernel = kern
    pa, pb, ra, rb = _mk(kernel)
    _, ea, eb = kernel._make_link("a")
    kernel._receive("b", rb)
    assert kernel._send("a", ra, _msg(encs=(ea,)), ea) is CallStatus.SUCCESS
    eng.run()
    moved = kernel.links[ea.link].ends[ea.side]
    assert moved.owner == "b"
    assert not moved.moving
    assert kernel.metrics.get("charlotte.moves_committed") == 1
    # three-party protocol cost three inter-kernel messages
    assert kernel.metrics.get("charlotte.move_msgs") == 3


def test_enclosed_end_cannot_be_used_while_moving(kern):
    eng, kernel = kern
    pa, pb, ra, rb = _mk(kernel)
    _, ea, eb = kernel._make_link("a")
    kernel._send("a", ra, _msg(encs=(ea,)), ea)  # unmatched: still staged
    assert kernel._send("a", ea, _msg(seq=9), None) is CallStatus.MOVING


def test_destroy_notifies_peer_and_fails_activities(kern):
    eng, kernel = kern
    pa, pb, ra, rb = _mk(kernel)
    kernel._send("a", ra, _msg(), None)  # unmatched
    assert kernel._destroy("b", rb) is CallStatus.SUCCESS
    eng.run()
    kinds_a = [c.kind for c in kernel._completions["a"]]
    assert CompletionKind.SEND_FAILED in kinds_a
    assert CompletionKind.LINK_DESTROYED in kinds_a
    # double destroy reports DESTROYED
    assert kernel._destroy("a", ra) is CallStatus.DESTROYED
    assert kernel._send("a", ra, _msg(), None) is CallStatus.DESTROYED


def test_process_death_destroys_all_its_links(kern):
    """§3.1: Charlotte even guarantees that process termination
    destroys all of the process's links."""
    eng, kernel = kern
    pa, pb, ra, rb = _mk(kernel)
    status, rc, rd = kernel._make_link("b")
    kernel.process_died("b")
    eng.run()
    assert kernel.links[ra.link].destroyed
    assert kernel.links[rc.link].destroyed
    kinds_a = [c.kind for c in kernel._completions["a"]]
    assert CompletionKind.LINK_DESTROYED in kinds_a


def test_wait_returns_queued_completion(kern):
    eng, kernel = kern
    pa, pb, ra, rb = _mk(kernel)
    kernel._receive("b", rb)
    kernel._send("a", ra, _msg(payload=b"z"), None)
    eng.run()
    got = []
    _collect(kernel._wait("b"), got)
    eng.run()
    assert len(got) == 1 and got[0].kind is CompletionKind.RECV_DONE


def test_wait_parks_until_completion(kern):
    eng, kernel = kern
    pa, pb, ra, rb = _mk(kernel)
    got = []
    _collect(kernel._wait("b"), got)
    eng.run()
    assert got == []  # parked
    kernel._receive("b", rb)
    kernel._send("a", ra, _msg(), None)
    eng.run()
    assert len(got) == 1 and got[0].kind is CompletionKind.RECV_DONE


def test_simultaneous_moves_of_both_ends_serialise(kern):
    """Figure 1: both ends of one link moved at once; the per-link move
    lock serialises the two agreements and both complete."""
    eng, kernel = kern
    pa, pb, ra, rb = _mk(kernel)  # transport link a<->b
    kernel.register_process("c", 2)
    kernel.register_process("d", 3)
    # second transport link between c and d
    status, rc, rd = kernel._make_link("c")
    kernel.links[rc.link].ends[1].owner = "d"
    # link 3, one end at a, other end at c
    status, e_at_a, e_at_c = kernel._make_link("a")
    kernel.links[e_at_a.link].ends[1].owner = "c"
    # a sends its end of link3 to b; c sends its end of link3 to d
    kernel._receive("b", rb)
    kernel._receive("d", rd)
    assert kernel._send("a", ra, _msg(encs=(e_at_a,)), e_at_a) is CallStatus.SUCCESS
    assert kernel._send("c", rc, _msg(seq=2, encs=(e_at_c,)), e_at_c) is CallStatus.SUCCESS
    eng.run()
    l3 = kernel.links[e_at_a.link]
    owners = {l3.ends[0].owner, l3.ends[1].owner}
    assert owners == {"b", "d"}
    assert kernel.metrics.get("charlotte.moves_committed") == 2
    # the loser of the lock race paid at least one retry
    assert kernel.metrics.get("charlotte.move_retries") >= 1
