"""The Charlotte LYNX runtime's §3.2.1/§3.2.2 protocol machinery.

Each test reconstructs a scenario from the paper:

* reverse-direction request while awaiting a reply  -> forbid/allow
* open-then-close queue with a racing request       -> retry + kernel delay
* multi-enclosure request                           -> goahead + enc packets
* abort + crash                                     -> lost enclosure (the
  documented deviation from the language definition)
* reply acknowledgments ablation                    -> server-side
  RequestAborted becomes possible, at +50 % traffic
"""

import pytest

from repro.core.api import (
    BYTES,
    INT,
    LINK,
    Operation,
    Proc,
    RequestAborted,
    ThreadAborted,
    make_cluster,
)
from repro.core.registry import EndDisposition
from repro.sim.failure import CrashMode

ECHO = Operation("echo", (BYTES,), (BYTES,))
ADD = Operation("add", (INT, INT), (INT,))
GIVE = Operation("give", (LINK,), ())
GIVE3 = Operation("give3", (LINK, LINK, LINK), ())


def test_reverse_direction_request_triggers_forbid_allow():
    """§3.2.1 scenario 1: A requests on L and awaits the reply; B, before
    replying, requests on L in the reverse direction.  A must bounce the
    unwanted request with FORBID (it cannot drop its Receive — it wants
    the reply), and send ALLOW later; B's request eventually succeeds."""

    class A(Proc):
        def __init__(self):
            self.reply = None
            self.served = None

        def main(self, ctx):
            (end,) = ctx.initial_links
            yield from ctx.register(ECHO, ADD)
            # phase 1: request with our queue closed
            self.reply = yield from ctx.connect(end, ECHO, (b"ping",))
            # phase 2: now willing to serve B's reverse request
            yield from ctx.open(end)
            inc = yield from ctx.wait_request()
            self.served = inc.op.name
            yield from ctx.reply(inc, (inc.args[0] + inc.args[1],))

    class B(Proc):
        def __init__(self):
            self.reverse_reply = None

        def reverse(self, ctx, end):
            # the coroutine mechanism "makes such a scenario entirely
            # plausible" (§3.2.1)
            self.reverse_reply = yield from ctx.connect(end, ADD, (2, 3))

        def main(self, ctx):
            (end,) = ctx.initial_links
            yield from ctx.register(ECHO, ADD)
            yield from ctx.open(end)
            inc = yield from ctx.wait_request()
            yield from ctx.fork(self.reverse(ctx, end), "reverse")
            yield from ctx.delay(1.0)  # let the reverse request launch
            yield from ctx.reply(inc, (inc.args[0],))

    cluster = make_cluster("charlotte")
    a_prog, b_prog = A(), B()
    a = cluster.spawn(a_prog, "A")
    b = cluster.spawn(b_prog, "B")
    cluster.create_link(a, b)
    cluster.run_until_quiet(max_ms=5e5)
    assert cluster.all_finished, cluster.unfinished()
    assert a_prog.reply == (b"ping",)
    assert b_prog.reverse_reply == (5,)
    m = cluster.metrics
    assert m.get("charlotte.forbid_sent") >= 1
    assert m.get("charlotte.allow_sent") >= 1
    assert m.get("charlotte.forbid_received") >= 1
    assert m.get("runtime.unwanted") >= 1
    cluster.check()


def test_open_close_race_triggers_retry():
    """§3.2.1 scenario 2: A opens its queue (posting a Receive), closes
    it again; B requested in the meantime so the Cancel fails and the
    unwanted message is bounced with RETRY.  The resent request is
    delayed by the kernel until A re-opens."""

    class A(Proc):
        def __init__(self):
            self.served_at = None

        def main(self, ctx):
            (end,) = ctx.initial_links
            yield from ctx.register(ADD)
            yield from ctx.delay(50.0)  # B's send is parked at the kernel
            yield from ctx.open(end)   # posts Receive -> instant match
            yield from ctx.close(end)  # Cancel fails: TOO_LATE
            yield from ctx.delay(100.0)  # unwanted arrives; retry goes out
            yield from ctx.open(end)
            inc = yield from ctx.wait_request()
            self.served_at = yield from ctx.now()
            yield from ctx.reply(inc, (inc.args[0] + inc.args[1],))

    class B(Proc):
        def __init__(self):
            self.reply = None

        def main(self, ctx):
            (end,) = ctx.initial_links
            self.reply = yield from ctx.connect(end, ADD, (4, 5))

    cluster = make_cluster("charlotte")
    a_prog, b_prog = A(), B()
    a = cluster.spawn(a_prog, "A")
    b = cluster.spawn(b_prog, "B")
    cluster.create_link(a, b)
    cluster.run_until_quiet(max_ms=5e5)
    assert cluster.all_finished, cluster.unfinished()
    assert b_prog.reply == (9,)
    m = cluster.metrics
    assert m.get("charlotte.retry_sent") >= 1
    assert m.get("charlotte.retry_received") >= 1
    assert m.get("charlotte.resends") >= 1
    assert m.get("runtime.unwanted") >= 1
    # the resend was parked until A reopened at ~150 ms
    assert a_prog.served_at > 150.0
    cluster.check()


def test_multi_enclosure_request_uses_goahead_and_enc():
    """§3.2.2 / figure 2: three enclosures -> first packet + goahead +
    two enc packets."""

    class A(Proc):
        def main(self, ctx):
            (to_b,) = ctx.initial_links
            give = []
            self.keep = []
            for _ in range(3):
                mine, theirs = yield from ctx.new_link()
                self.keep.append(mine)
                give.append(theirs)
            yield from ctx.connect(to_b, GIVE3, tuple(give))

    class B(Proc):
        def __init__(self):
            self.got = None

        def main(self, ctx):
            (from_a,) = ctx.initial_links
            yield from ctx.register(GIVE3)
            yield from ctx.open(from_a)
            inc = yield from ctx.wait_request()
            self.got = len(inc.args)
            yield from ctx.reply(inc, ())

    cluster = make_cluster("charlotte")
    a_prog, b_prog = A(), B()
    a = cluster.spawn(a_prog, "A")
    b = cluster.spawn(b_prog, "B")
    cluster.create_link(a, b)
    cluster.run_until_quiet(max_ms=5e5)
    assert cluster.all_finished, cluster.unfinished()
    assert b_prog.got == 3
    m = cluster.metrics
    assert m.get("charlotte.goahead_sent") == 1
    assert m.get("wire.messages.enc") == 2
    assert m.get("wire.messages.request") == 1
    assert m.get("wire.messages.goahead") == 1
    # every moved end ran the kernel's three-party protocol
    assert m.get("charlotte.moves_committed") == 3
    cluster.check()


def test_single_enclosure_needs_no_goahead():
    class A(Proc):
        def main(self, ctx):
            (to_b,) = ctx.initial_links
            mine, theirs = yield from ctx.new_link()
            yield from ctx.connect(to_b, GIVE, (theirs,))

    class B(Proc):
        def main(self, ctx):
            (from_a,) = ctx.initial_links
            yield from ctx.register(GIVE)
            yield from ctx.open(from_a)
            inc = yield from ctx.wait_request()
            yield from ctx.reply(inc, ())

    cluster = make_cluster("charlotte")
    a = cluster.spawn(A(), "A")
    b = cluster.spawn(B(), "B")
    cluster.create_link(a, b)
    cluster.run_until_quiet(max_ms=5e5)
    assert cluster.all_finished
    m = cluster.metrics
    assert m.get("charlotte.goahead_sent") == 0
    assert m.get("wire.messages.enc") == 0
    cluster.check()


def test_aborted_request_enclosure_lost_when_receiver_crashes():
    """§3.2.2 (a)–(d): A sends a request enclosing a link end; B
    receives it unintentionally; A aborts; B crashes before returning
    the enclosure.  "From the point of view of language semantics, the
    message to B was never sent, yet the enclosure has been lost." """

    class A(Proc):
        def __init__(self):
            self.aborted = False
            self.given_ref = None

        def requester(self, ctx, to_b, enc):
            try:
                yield from ctx.connect(to_b, GIVE, (enc,))
            except ThreadAborted:
                self.aborted = True
            except Exception:  # noqa: BLE001 - link may die later
                pass

        def main(self, ctx):
            (to_b,) = ctx.initial_links
            mine, theirs = yield from ctx.new_link()
            self.given_ref = theirs.end_ref
            t = yield from ctx.fork(self.requester(ctx, to_b, theirs), "req")
            # wait until the kernel has surely matched the request into
            # B's posted Receive (B awaits a reply on the same link)
            yield from ctx.delay(40.0)
            yield from ctx.abort(t)  # (c): too late to cancel
            yield from ctx.delay(1000.0)

    class B(Proc):
        def main(self, ctx):
            (to_a,) = ctx.initial_links
            # (b): B waits for a reply, so its Receive is posted and it
            # will receive A's request unintentionally
            yield from ctx.connect(to_a, ECHO, (b"never answered",))

    cluster = make_cluster("charlotte")
    a_prog = A()
    a = cluster.spawn(a_prog, "A")
    b = cluster.spawn(B(), "B")
    cluster.create_link(a, b)
    # (d): B crashes in the window between receiving the unwanted
    # request and its forbid reaching A
    cluster.engine.schedule(45.0, cluster.crash_process, "B", CrashMode.PROCESSOR)
    cluster.run_until_quiet(max_ms=5e5)
    assert a_prog.aborted
    # the deviation: the enclosed end is gone although the language
    # says A still has it
    assert cluster.registry.disposition_of(a_prog.given_ref) in (
        EndDisposition.LOST,
        EndDisposition.IN_TRANSIT,
    ) or cluster.registry.is_destroyed(a_prog.given_ref.link)


class _AbortClient(Proc):
    def __init__(self):
        self.aborted = False

    def requester(self, ctx, end):
        try:
            yield from ctx.connect(end, ECHO, (b"x",))
        except ThreadAborted:
            self.aborted = True

    def main(self, ctx):
        (end,) = ctx.initial_links
        t = yield from ctx.fork(self.requester(ctx, end), "req")
        yield from ctx.delay(100.0)  # server has received it by now
        yield from ctx.abort(t)
        yield from ctx.delay(500.0)


class _SlowEchoServer(Proc):
    def __init__(self):
        self.reply_error = None

    def main(self, ctx):
        (end,) = ctx.initial_links
        yield from ctx.register(ECHO)
        yield from ctx.open(end)
        inc = yield from ctx.wait_request()
        yield from ctx.delay(200.0)  # client aborts meanwhile
        try:
            yield from ctx.reply(inc, (inc.args[0],))
        except RequestAborted as e:
            self.reply_error = e


def test_without_reply_acks_server_never_feels_abort():
    """§3.2: "Such exceptions are not provided under Charlotte because
    they would require a final, top-level acknowledgment for reply
    messages." """
    cluster = make_cluster("charlotte")
    client, server = _AbortClient(), _SlowEchoServer()
    s = cluster.spawn(server, "server")
    c = cluster.spawn(client, "client")
    cluster.create_link(s, c)
    cluster.run_until_quiet(max_ms=5e5)
    assert cluster.all_finished
    assert client.aborted
    assert server.reply_error is None  # the deviation
    assert cluster.metrics.get("runtime.replies_dropped_aborted") == 1


def test_with_reply_acks_server_feels_abort():
    """The ablated implementation (reply_acks=True) regains the
    exception, at the cost E7 measures."""
    cluster = make_cluster("charlotte", reply_acks=True)
    client, server = _AbortClient(), _SlowEchoServer()
    s = cluster.spawn(server, "server")
    c = cluster.spawn(client, "client")
    cluster.create_link(s, c)
    cluster.run_until_quiet(max_ms=5e5)
    assert cluster.all_finished
    assert client.aborted
    assert isinstance(server.reply_error, RequestAborted)
    assert cluster.metrics.get("charlotte.ack_sent") >= 1


def test_reply_acks_add_fifty_percent_traffic():
    class Server(Proc):
        def main(self, ctx):
            (end,) = ctx.initial_links
            yield from ctx.register(ADD)
            yield from ctx.open(end)
            for _ in range(10):
                inc = yield from ctx.wait_request()
                yield from ctx.reply(inc, (inc.args[0] + inc.args[1],))

    class Client(Proc):
        def main(self, ctx):
            (end,) = ctx.initial_links
            for i in range(10):
                yield from ctx.connect(end, ADD, (i, i))

    def messages(reply_acks):
        cluster = make_cluster("charlotte", reply_acks=reply_acks)
        s = cluster.spawn(Server(), "server")
        c = cluster.spawn(Client(), "client")
        cluster.create_link(s, c)
        cluster.run_until_quiet(max_ms=1e6)
        assert cluster.all_finished
        return cluster.metrics.total("wire.messages.")

    base = messages(False)
    acked = messages(True)
    assert base == 20
    assert acked == 30
    assert (acked - base) / base == pytest.approx(0.5)
