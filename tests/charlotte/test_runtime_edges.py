"""Charlotte runtime edge cases beyond the headline protocol tests."""

import pytest

from repro.core.api import (
    BYTES,
    INT,
    LINK,
    LinkDestroyed,
    Operation,
    Proc,
    ThreadAborted,
    make_cluster,
)

ECHO = Operation("echo", (BYTES,), (BYTES,))
ADD = Operation("add", (INT, INT), (INT,))
GIVE = Operation("give", (LINK,), ())
GIVE2_BACK = Operation("giveback", (STR_ := INT,), (LINK, LINK))


def test_outbound_queue_serialises_sends_per_end():
    """The kernel allows one outstanding send per end; the runtime must
    queue concurrent coroutines' messages and keep FIFO order."""

    class Burst(Proc):
        def one(self, ctx, end, i):
            yield from ctx.connect(end, ADD, (i, 0))

        def main(self, ctx):
            (end,) = ctx.initial_links
            for i in range(5):
                yield from ctx.fork(self.one(ctx, end, i), f"b{i}")

    class Server(Proc):
        def __init__(self):
            self.order = []

        def main(self, ctx):
            (end,) = ctx.initial_links
            yield from ctx.register(ADD)
            yield from ctx.open(end)
            for _ in range(5):
                inc = yield from ctx.wait_request()
                self.order.append(inc.args[0])
                yield from ctx.reply(inc, (0,))

    cluster = make_cluster("charlotte")
    server = Server()
    s = cluster.spawn(server, "server")
    b = cluster.spawn(Burst(), "burst")
    cluster.create_link(s, b)
    cluster.run_until_quiet(max_ms=1e6)
    assert cluster.all_finished
    assert server.order == [0, 1, 2, 3, 4]
    # one outstanding kernel send at a time: never a BUSY status
    cluster.check()


def test_reply_carrying_multiple_enclosures_needs_no_goahead():
    """§3.2.2: "none is needed for replies, since a reply is always
    wanted" — enc packets yes, goahead no."""

    class Minter(Proc):
        def main(self, ctx):
            (public,) = ctx.initial_links
            yield from ctx.register(GIVE2_BACK)
            yield from ctx.open(public)
            inc = yield from ctx.wait_request()
            a1, b1 = yield from ctx.new_link()
            a2, b2 = yield from ctx.new_link()
            yield from ctx.reply(inc, (b1, b2))
            yield from ctx.delay(1000.0)

    class Asker(Proc):
        def __init__(self):
            self.got = None

        def main(self, ctx):
            (public,) = ctx.initial_links
            caps = yield from ctx.connect(public, GIVE2_BACK, (0,))
            self.got = len(caps)

    cluster = make_cluster("charlotte")
    asker = Asker()
    m = cluster.spawn(Minter(), "minter")
    a = cluster.spawn(asker, "asker")
    cluster.create_link(m, a)
    cluster.run_until_quiet(max_ms=1e6)
    assert asker.got == 2
    assert cluster.metrics.get("wire.messages.enc") == 1  # 2 encs: 1 extra
    assert cluster.metrics.get("charlotte.goahead_sent") == 0
    cluster.check()


def test_abort_while_forbid_blocked_withdraws_cleanly():
    """A connect bounced by FORBID sits in the runtime awaiting ALLOW;
    aborting it then must withdraw it without a resend."""

    class A(Proc):
        def __init__(self):
            self.reply = None

        def main(self, ctx):
            (end,) = ctx.initial_links
            yield from ctx.register(ECHO, ADD)
            # connect; B will bounce its own reverse request... we are
            # the FORBID *sender* here.  For the blocked-side view we
            # need B's runtime to hold a forbidden request: see B.
            self.reply = yield from ctx.connect(end, ECHO, (b"x",))
            yield from ctx.delay(400.0)
            yield from ctx.open(end)
            inc = yield from ctx.wait_request()
            yield from ctx.reply(inc, (inc.args[0] + inc.args[1],))

    class B(Proc):
        def __init__(self):
            self.aborted = False
            self.second_ok = None

        def reverse(self, ctx, end):
            try:
                yield from ctx.connect(end, ADD, (1, 1))
            except ThreadAborted:
                self.aborted = True

        def reverse2(self, ctx, end):
            r = yield from ctx.connect(end, ADD, (2, 3))
            self.second_ok = r[0]

        def main(self, ctx):
            (end,) = ctx.initial_links
            yield from ctx.register(ECHO, ADD)
            yield from ctx.open(end)
            inc = yield from ctx.wait_request()
            t = yield from ctx.fork(self.reverse(ctx, end), "rev")
            yield from ctx.delay(120.0)  # reverse got bounced by FORBID
            yield from ctx.abort(t)     # abort it while forbid-blocked
            yield from ctx.fork(self.reverse2(ctx, end), "rev2")
            yield from ctx.delay(5.0)
            yield from ctx.reply(inc, (inc.args[0],))

    cluster = make_cluster("charlotte")
    a_prog, b_prog = A(), B()
    a = cluster.spawn(a_prog, "A")
    b = cluster.spawn(b_prog, "B")
    cluster.create_link(a, b)
    cluster.run_until_quiet(max_ms=1e6)
    assert cluster.all_finished, cluster.unfinished()
    assert b_prog.aborted
    assert b_prog.second_ok == 5  # the later request still flowed
    assert a_prog.reply == (b"x",)
    cluster.check()


def test_destroy_during_pending_unmatched_send():
    """Destroying a link with our send still parked at the kernel
    surfaces LinkDestroyed to the blocked coroutine."""

    class A(Proc):
        def __init__(self):
            self.error = None

        def req(self, ctx, end):
            try:
                yield from ctx.connect(end, ECHO, (b"x",))
            except LinkDestroyed as e:
                self.error = e

        def main(self, ctx):
            (end,) = ctx.initial_links
            yield from ctx.fork(self.req(ctx, end), "req")
            yield from ctx.delay(10.0)
            # the peer never posts a Receive; now the peer destroys
            yield from ctx.delay(200.0)

    class B(Proc):
        def main(self, ctx):
            (end,) = ctx.initial_links
            yield from ctx.delay(50.0)
            yield from ctx.destroy(end)

    cluster = make_cluster("charlotte")
    a_prog = A()
    a = cluster.spawn(a_prog, "A")
    b = cluster.spawn(B(), "B")
    cluster.create_link(a, b)
    cluster.run_until_quiet(max_ms=1e6)
    assert isinstance(a_prog.error, LinkDestroyed)
    cluster.check()


def test_unmatched_send_enclosure_restored_on_destroy():
    """If the peer never posted a Receive, a destroyed link provably
    never transferred our message: its enclosure comes home (the kernel
    reports the send as 'unsent')."""
    from repro.core.registry import EndDisposition

    class A(Proc):
        def __init__(self):
            self.given_ref = None

        def req(self, ctx, end, enc):
            try:
                yield from ctx.connect(end, GIVE, (enc,))
            except LinkDestroyed:
                pass

        def main(self, ctx):
            (end,) = ctx.initial_links
            mine, theirs = yield from ctx.new_link()
            self.given_ref = theirs.end_ref
            yield from ctx.fork(self.req(ctx, end, theirs), "req")
            yield from ctx.delay(1e9)  # outlive the horizon

    class DeafB(Proc):
        """Never posts a Receive (queue closed, no connects), then
        destroys the link."""

        def main(self, ctx):
            (end,) = ctx.initial_links
            yield from ctx.delay(50.0)
            yield from ctx.destroy(end)
            yield from ctx.delay(1e9)

    cluster = make_cluster("charlotte")
    a_prog = A()
    a = cluster.spawn(a_prog, "A")
    b = cluster.spawn(DeafB(), "B")
    cluster.create_link(a, b)
    cluster.run_until_quiet(max_ms=1e5)
    assert (
        cluster.registry.disposition_of(a_prog.given_ref)
        is EndDisposition.OWNED
    )
    assert cluster.registry.owner_of(a_prog.given_ref) == "A"
    assert not cluster.registry.is_destroyed(a_prog.given_ref.link)


def test_interleaved_rpc_on_two_links_shares_kernel_cleanly():
    class Server(Proc):
        def __init__(self, n):
            self.n = n

        def main(self, ctx):
            ends = ctx.initial_links
            yield from ctx.register(ADD)
            for e in ends:
                yield from ctx.open(e)
            for _ in range(self.n):
                inc = yield from ctx.wait_request()
                yield from ctx.reply(inc, (inc.args[0] + inc.args[1],))

    class Client(Proc):
        def __init__(self, base):
            self.base = base
            self.replies = []

        def main(self, ctx):
            (end,) = ctx.initial_links
            for i in range(3):
                r = yield from ctx.connect(end, ADD, (self.base, i))
                self.replies.append(r[0])

    cluster = make_cluster("charlotte")
    server = Server(6)
    c1, c2 = Client(10), Client(20)
    s = cluster.spawn(server, "server")
    h1 = cluster.spawn(c1, "c1")
    h2 = cluster.spawn(c2, "c2")
    cluster.create_link(s, h1)
    cluster.create_link(s, h2)
    cluster.run_until_quiet(max_ms=1e6)
    assert cluster.all_finished
    assert c1.replies == [10, 11, 12]
    assert c2.replies == [20, 21, 22]
    cluster.check()
