"""Unit tests for the Chrysalis primitives (§5.1 semantics)."""

import pytest

from repro.analysis.costmodel import CostModel
from repro.chrysalis.kernel import ChrysalisKernel, ChrysalisPort, DQ_BLOCKED
from repro.core.exceptions import ProtocolViolation
from repro.sim.engine import Engine
from repro.sim.metrics import MetricSet
from repro.sim.network import SharedMemoryInterconnect


@pytest.fixture
def kern():
    eng = Engine()
    metrics = MetricSet()
    costs = CostModel.default().chrysalis
    switch = SharedMemoryInterconnect(eng, metrics=metrics)
    return eng, ChrysalisKernel(eng, metrics, costs, switch)


# ---------------------------------------------------------------- events
def test_event_post_then_wait_returns_datum(kern):
    eng, k = kern
    e = k.make_event("p")
    k.post(e, 42)
    got = []
    k.event_wait("p", e).add_done_callback(lambda f: got.append(f.value))
    eng.run()
    assert got == [42]


def test_event_wait_then_post(kern):
    eng, k = kern
    e = k.make_event("p")
    got = []
    k.event_wait("p", e).add_done_callback(lambda f: got.append(f.value))
    eng.run()
    assert got == []
    k.post(e, "late")
    eng.run()
    assert got == ["late"]


def test_only_owner_may_wait(kern):
    """"only the owner of an event block can wait" (§5.1)."""
    eng, k = kern
    e = k.make_event("owner")
    with pytest.raises(ProtocolViolation):
        k.event_wait("intruder", e)


def test_posts_queue_when_nobody_waits(kern):
    eng, k = kern
    e = k.make_event("p")
    k.post(e, 1)
    k.post(e, 2)
    got = []
    k.event_wait("p", e).add_done_callback(lambda f: got.append(f.value))
    eng.run()
    k.event_wait("p", e).add_done_callback(lambda f: got.append(f.value))
    eng.run()
    assert got == [1, 2]


# ---------------------------------------------------------------- queues
def test_dual_queue_fifo_data(kern):
    eng, k = kern
    q = k.make_queue()
    k.enqueue(q, "a")
    k.enqueue(q, "b")
    e = k.make_event("p")
    assert k.dequeue(q, e) == "a"
    assert k.dequeue(q, e) == "b"


def test_dual_queue_empty_parks_event_name(kern):
    """"Once a queue becomes empty ... dequeue operations actually
    enqueue event block names" (§5.1)."""
    eng, k = kern
    q = k.make_queue()
    e = k.make_event("p")
    assert k.dequeue(q, e) is DQ_BLOCKED
    got = []
    k.event_wait("p", e).add_done_callback(lambda f: got.append(f.value))
    # "An enqueue operation on a queue containing event block names
    # actually posts a queued event instead"
    k.enqueue(q, "datum")
    eng.run()
    assert got == ["datum"]
    # the queue is back in data mode
    k.enqueue(q, "next")
    assert k.dequeue(q, e) == "next"


def test_dual_queue_overflow_detected(kern):
    eng, k = kern
    q = k.make_queue(capacity=2)
    k.enqueue(q, 1)
    k.enqueue(q, 2)
    with pytest.raises(ProtocolViolation):
        k.enqueue(q, 3)


def test_enqueue_to_dead_queue_is_discarded(kern):
    """A stale dual-queue name after a move must be survivable (§5.2)."""
    eng, k = kern
    k.enqueue(9999, "ghost")  # no such queue
    assert k.metrics.get("chrysalis.enqueue_to_dead_queue") == 1


# --------------------------------------------------------------- objects
def test_memory_object_refcount_reclaim(kern):
    eng, k = kern
    oid = k.make_object({"x": 1})
    assert k.map_object(oid) == {"x": 1}
    k.map_object(oid)
    assert k.object_refcount(oid) == 2
    k.mark_reclaimable(oid)
    k.unmap_object(oid)
    assert not k.object_reclaimed(oid)
    k.unmap_object(oid)
    # "At this point Chrysalis notices that the reference count has
    # reached zero, and the object is reclaimed." (§5.2)
    assert k.object_reclaimed(oid)


def test_map_of_reclaimed_object_fails(kern):
    eng, k = kern
    oid = k.make_object(object())
    k.map_object(oid)
    k.mark_reclaimable(oid)
    k.unmap_object(oid)
    with pytest.raises(ProtocolViolation):
        k.map_object(oid)


def test_port_charges_costs(kern):
    eng, k = kern
    port = ChrysalisPort(k, "p")
    done = []
    port.make_queue().add_done_callback(lambda f: done.append(eng.now))
    eng.run()
    assert done == [pytest.approx(k.costs.make_queue_ms)]
