"""Chrysalis runtime edge cases: buffer flow control, stale notices,
adoption races, reclaim accounting."""

import pytest

from repro.core.api import (
    BYTES,
    INT,
    LINK,
    LinkDestroyed,
    Operation,
    Proc,
    make_cluster,
)

ECHO = Operation("echo", (BYTES,), (BYTES,))
ADD = Operation("add", (INT, INT), (INT,))
GIVE = Operation("give", (LINK,), ())


def test_single_request_buffer_serialises_bursts():
    """"buffer space for a single request ... in each direction"
    (§5.2): five concurrent connects on one link must flow one at a
    time through the shared buffer, in order, with the extras parked in
    the runtime."""

    class Burst(Proc):
        def one(self, ctx, end, i):
            yield from ctx.connect(end, ADD, (i, 0))

        def main(self, ctx):
            (end,) = ctx.initial_links
            for i in range(5):
                yield from ctx.fork(self.one(ctx, end, i), f"b{i}")

    class Server(Proc):
        def __init__(self):
            self.order = []

        def main(self, ctx):
            (end,) = ctx.initial_links
            yield from ctx.register(ADD)
            yield from ctx.open(end)
            for _ in range(5):
                inc = yield from ctx.wait_request()
                self.order.append(inc.args[0])
                yield from ctx.reply(inc, (0,))

    cluster = make_cluster("chrysalis")
    server = Server()
    s = cluster.spawn(server, "server")
    b = cluster.spawn(Burst(), "burst")
    cluster.create_link(s, b)
    cluster.run_until_quiet(max_ms=1e6)
    assert cluster.all_finished
    assert server.order == [0, 1, 2, 3, 4]
    # at least some of the burst had to park behind the single buffer
    # (how many depends on how fast the server drains it)
    assert cluster.metrics.get("chrysalis.sends_parked") >= 1
    cluster.check()


def test_reply_buffer_flow_control_two_serving_coroutines():
    """Two server coroutines answer back-to-back on one link: the
    single reply buffer forces the second reply to park until the
    client scatters the first."""

    class Server(Proc):
        def entry(self, ctx, inc):
            yield from ctx.reply(inc, (inc.args[0] + inc.args[1],))

        def main(self, ctx):
            (end,) = ctx.initial_links
            yield from ctx.register(ADD)
            yield from ctx.open(end)
            threads = []
            for _ in range(2):
                inc = yield from ctx.wait_request()
                t = yield from ctx.fork(self.entry(ctx, inc), "e")
                threads.append(t)
            while any(t.live for t in threads):
                yield from ctx.delay(1.0)

    class Client(Proc):
        def __init__(self):
            self.replies = []

        def one(self, ctx, end, i):
            r = yield from ctx.connect(end, ADD, (i, 100))
            self.replies.append(r[0])

        def main(self, ctx):
            (end,) = ctx.initial_links
            for i in range(2):
                yield from ctx.fork(self.one(ctx, end, i), f"c{i}")

    cluster = make_cluster("chrysalis")
    client = Client()
    s = cluster.spawn(Server(), "server")
    c = cluster.spawn(client, "client")
    cluster.create_link(s, c)
    cluster.run_until_quiet(max_ms=1e6)
    assert cluster.all_finished, cluster.unfinished()
    assert sorted(client.replies) == [100, 101]
    cluster.check()


def test_stale_notice_after_move_is_discarded():
    """"If either check fails, the notice is discarded" (§5.2): traffic
    racing a move leaves notices pointing at the old owner's queue."""

    class Carol(Proc):
        def __init__(self):
            self.reply = None

        def main(self, ctx):
            (to_link,) = ctx.initial_links
            # fire the request exactly while the move is happening
            yield from ctx.delay(2.0)
            self.reply = yield from ctx.connect(to_link, ADD, (2, 2))

    class Alice(Proc):
        def main(self, ctx):
            to_carol, to_bob = ctx.initial_links
            yield from ctx.register(GIVE)
            yield from ctx.delay(2.0)
            yield from ctx.connect(to_bob, GIVE, (to_carol,))
            yield from ctx.delay(500.0)  # stay mapped a while

    class Bob(Proc):
        def main(self, ctx):
            (from_alice,) = ctx.initial_links
            yield from ctx.register(GIVE, ADD)
            yield from ctx.open(from_alice)
            inc = yield from ctx.wait_request()
            moved = inc.args[0]
            yield from ctx.reply(inc, ())
            yield from ctx.open(moved)
            inc2 = yield from ctx.wait_request()
            yield from ctx.reply(inc2, (inc2.args[0] + inc2.args[1],))

    cluster = make_cluster("chrysalis")
    carol = Carol()
    c = cluster.spawn(carol, "carol")
    a = cluster.spawn(Alice(), "alice")
    b = cluster.spawn(Bob(), "bob")
    cluster.create_link(c, a)
    cluster.create_link(a, b)
    cluster.run_until_quiet(max_ms=1e6)
    assert carol.reply == (4,), cluster.unfinished()
    cluster.check()


def test_moved_link_object_refcount_follows_owners():
    """Mapping follows ownership: after a move the object is mapped by
    exactly the two current owners; destroy + unmap reclaims it."""

    class Alice(Proc):
        def __init__(self):
            self.oid = None

        def main(self, ctx):
            (to_bob,) = ctx.initial_links
            mine, theirs = yield from ctx.new_link()
            self.oid = ctx._runtime.cends[mine.end_ref].oid
            yield from ctx.register(GIVE)
            yield from ctx.connect(to_bob, GIVE, (theirs,))
            yield from ctx.delay(50.0)
            yield from ctx.destroy(mine)
            yield from ctx.delay(100.0)

    class Bob(Proc):
        def main(self, ctx):
            (from_alice,) = ctx.initial_links
            yield from ctx.register(GIVE)
            yield from ctx.open(from_alice)
            inc = yield from ctx.wait_request()
            yield from ctx.reply(inc, ())
            yield from ctx.delay(300.0)  # sees the DESTROYED notice

    cluster = make_cluster("chrysalis")
    alice = Alice()
    a = cluster.spawn(alice, "alice")
    b = cluster.spawn(Bob(), "bob")
    cluster.create_link(a, b)
    cluster.run_until_quiet(max_ms=1e6)
    assert cluster.all_finished
    # "At this point Chrysalis notices that the reference count has
    # reached zero, and the object is reclaimed." (§5.2)
    assert cluster.kernel.object_reclaimed(alice.oid)
    cluster.check()


def test_adopting_end_of_already_destroyed_link():
    """The far end destroys the link while our end is in transit; the
    adopter must find the DESTROYED flag at adoption and feel the
    exception on first use."""

    class Alice(Proc):
        def main(self, ctx):
            to_carol, to_bob = ctx.initial_links
            yield from ctx.register(GIVE)
            yield from ctx.connect(to_bob, GIVE, (to_carol,))
            yield from ctx.delay(1000.0)

    class Carol(Proc):
        def main(self, ctx):
            (to_alice,) = ctx.initial_links
            # destroy "simultaneously" with the move
            yield from ctx.destroy(to_alice)
            yield from ctx.delay(1000.0)

    class Bob(Proc):
        def __init__(self):
            self.error = None

        def main(self, ctx):
            (from_alice,) = ctx.initial_links
            yield from ctx.register(GIVE, ADD)
            yield from ctx.open(from_alice)
            inc = yield from ctx.wait_request()
            moved = inc.args[0]
            yield from ctx.reply(inc, ())
            yield from ctx.delay(50.0)
            try:
                yield from ctx.connect(moved, ADD, (1, 1))
            except LinkDestroyed as e:
                self.error = e

    cluster = make_cluster("chrysalis")
    bob = Bob()
    c = cluster.spawn(Carol(), "carol")
    a = cluster.spawn(Alice(), "alice")
    b = cluster.spawn(bob, "bob")
    cluster.create_link(c, a)
    cluster.create_link(a, b)
    cluster.run_until_quiet(max_ms=1e6)
    assert cluster.all_finished, cluster.unfinished()
    assert isinstance(bob.error, LinkDestroyed)
    cluster.check()
