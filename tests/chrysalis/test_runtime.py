"""Chrysalis LYNX runtime behaviour (§5.2/§5.3 semantics)."""

import pytest

from repro.core.api import (
    BYTES,
    INT,
    LINK,
    LinkDestroyed,
    Operation,
    Proc,
    RequestAborted,
    ThreadAborted,
    make_cluster,
)
from repro.sim.failure import CrashMode

ECHO = Operation("echo", (BYTES,), (BYTES,))
ADD = Operation("add", (INT, INT), (INT,))
GIVE = Operation("give", (LINK,), ())


class EchoServer(Proc):
    def __init__(self, n=1):
        self.n = n

    def main(self, ctx):
        (end,) = ctx.initial_links
        yield from ctx.register(ECHO, ADD)
        yield from ctx.open(end)
        for _ in range(self.n):
            inc = yield from ctx.wait_request()
            if inc.op.name == "echo":
                yield from ctx.reply(inc, (inc.args[0],))
            else:
                yield from ctx.reply(inc, (inc.args[0] + inc.args[1],))


def test_rpc_roundtrip_and_paper_latency():
    class Client(Proc):
        def __init__(self):
            self.rtt = None

        def main(self, ctx):
            (end,) = ctx.initial_links
            # warm-up then measure (first op pays queue creation etc.)
            yield from ctx.connect(end, ECHO, (b"w",))
            t0 = yield from ctx.now()
            r = yield from ctx.connect(end, ECHO, (b"",))
            self.rtt = (yield from ctx.now()) - t0
            assert r == (b"",)

    cluster = make_cluster("chrysalis")
    client = Client()
    s = cluster.spawn(EchoServer(2), "server")
    c = cluster.spawn(client, "client")
    cluster.create_link(s, c)
    cluster.run_until_quiet(max_ms=1e5)
    assert cluster.all_finished
    # §5.3: "a simple remote operation requires about 2.4 ms"
    assert client.rtt == pytest.approx(2.4, rel=0.1)
    cluster.check()


def test_no_unwanted_message_machinery():
    """Chrysalis needs none of retry/forbid/allow/goahead — even in the
    reverse-direction scenario that forces Charlotte into forbid."""

    class A(Proc):
        def __init__(self):
            self.reply = None
            self.served = None

        def main(self, ctx):
            (end,) = ctx.initial_links
            yield from ctx.register(ECHO, ADD)
            self.reply = yield from ctx.connect(end, ECHO, (b"ping",))
            yield from ctx.open(end)
            inc = yield from ctx.wait_request()
            self.served = inc.op.name
            yield from ctx.reply(inc, (inc.args[0] + inc.args[1],))

    class B(Proc):
        def __init__(self):
            self.reverse_reply = None

        def reverse(self, ctx, end):
            self.reverse_reply = yield from ctx.connect(end, ADD, (2, 3))

        def main(self, ctx):
            (end,) = ctx.initial_links
            yield from ctx.register(ECHO, ADD)
            yield from ctx.open(end)
            inc = yield from ctx.wait_request()
            yield from ctx.fork(self.reverse(ctx, end), "rev")
            yield from ctx.delay(0.5)
            yield from ctx.reply(inc, (inc.args[0],))

    cluster = make_cluster("chrysalis")
    a_prog, b_prog = A(), B()
    a = cluster.spawn(a_prog, "A")
    b = cluster.spawn(b_prog, "B")
    cluster.create_link(a, b)
    cluster.run_until_quiet(max_ms=1e5)
    assert cluster.all_finished, cluster.unfinished()
    assert a_prog.reply == (b"ping",)
    assert b_prog.reverse_reply == (5,)
    m = cluster.metrics
    # the whole §3.2.1 vocabulary is absent
    assert m.get("runtime.unwanted") == 0
    assert m.total("wire.messages.retry") == 0
    assert m.total("wire.messages.forbid") == 0
    assert m.total("wire.messages.goahead") == 0
    cluster.check()


def test_move_updates_dq_name_and_traffic_follows():
    """A link end moves; the next message lands at the new owner via
    the updated dual-queue-name hint."""

    class Alice(Proc):
        def __init__(self):
            self.reply = None

        def main(self, ctx):
            (to_bob,) = ctx.initial_links
            mine, theirs = yield from ctx.new_link()
            yield from ctx.connect(to_bob, GIVE, (theirs,))
            self.reply = yield from ctx.connect(mine, ADD, (10, 20))

    class Bob(Proc):
        def main(self, ctx):
            (from_alice,) = ctx.initial_links
            yield from ctx.register(GIVE, ADD)
            yield from ctx.open(from_alice)
            inc = yield from ctx.wait_request()
            moved = inc.args[0]
            yield from ctx.reply(inc, ())
            yield from ctx.open(moved)
            inc2 = yield from ctx.wait_request()
            yield from ctx.reply(inc2, (inc2.args[0] + inc2.args[1],))

    cluster = make_cluster("chrysalis")
    alice = Alice()
    a = cluster.spawn(alice, "alice")
    b = cluster.spawn(Bob(), "bob")
    cluster.create_link(a, b)
    cluster.run_until_quiet(max_ms=1e5)
    assert cluster.all_finished, cluster.unfinished()
    assert alice.reply == (30,)
    # hint machinery was exercised: objects mapped by the adopter
    assert cluster.metrics.get("chrysalis.ops.wide_write") >= 1
    cluster.check()


def test_move_with_message_waiting_inside():
    """§2.1: "A moved link may therefore (logically at least) have
    messages inside, waiting to be received at the moving end" — the
    adopter finds the set flag and serves the request."""

    class Carol(Proc):
        def __init__(self):
            self.reply = None

        def main(self, ctx):
            (to_alice,) = ctx.initial_links
            # send a request on the link while Alice still owns the far
            # end but never opens it; Alice then moves that end to Bob
            self.reply = yield from ctx.connect(to_alice, ADD, (7, 8))

    class Alice(Proc):
        def main(self, ctx):
            to_carol, to_bob = ctx.initial_links
            yield from ctx.register(GIVE)
            yield from ctx.delay(5.0)  # Carol's request is in the buffer
            yield from ctx.connect(to_bob, GIVE, (to_carol,))

    class Bob(Proc):
        def main(self, ctx):
            (from_alice,) = ctx.initial_links
            yield from ctx.register(GIVE, ADD)
            yield from ctx.open(from_alice)
            inc = yield from ctx.wait_request()
            moved = inc.args[0]
            yield from ctx.reply(inc, ())
            yield from ctx.open(moved)
            inc2 = yield from ctx.wait_request()  # Carol's parked request
            yield from ctx.reply(inc2, (inc2.args[0] + inc2.args[1],))

    cluster = make_cluster("chrysalis")
    carol, alice = Carol(), Alice()
    c = cluster.spawn(carol, "carol")
    a = cluster.spawn(alice, "alice")
    b = cluster.spawn(Bob(), "bob")
    cluster.create_link(c, a)  # to_carol/to_alice
    cluster.create_link(a, b)  # to_bob/from_alice
    cluster.run_until_quiet(max_ms=1e5)
    assert cluster.all_finished, cluster.unfinished()
    assert carol.reply == (15,)
    cluster.check()


def test_destroy_reclaims_memory_object():
    class P(Proc):
        def main(self, ctx):
            a, b = yield from ctx.new_link()
            self.oid = ctx._runtime.cends[a.end_ref].oid
            yield from ctx.destroy(a)
            yield from ctx.delay(10.0)  # let the peer-side notice land

    cluster = make_cluster("chrysalis")
    p = P()
    cluster.spawn(p, "p")
    cluster.run_until_quiet(max_ms=1e5)
    assert cluster.all_finished
    assert cluster.kernel.object_reclaimed(p.oid)
    cluster.check()


def test_server_feels_request_aborted_via_shared_memory():
    """§6 item (4): exceptional conditions detected "without any extra
    acknowledgments" — the abort flag lives in the link object."""

    class Client(Proc):
        def __init__(self):
            self.aborted = False

        def requester(self, ctx, end):
            try:
                yield from ctx.connect(end, ECHO, (b"x",))
            except ThreadAborted:
                self.aborted = True

        def main(self, ctx):
            (end,) = ctx.initial_links
            t = yield from ctx.fork(self.requester(ctx, end), "req")
            yield from ctx.delay(20.0)  # server consumed the request
            yield from ctx.abort(t)
            yield from ctx.delay(100.0)

    class SlowServer(Proc):
        def __init__(self):
            self.error = None

        def main(self, ctx):
            (end,) = ctx.initial_links
            yield from ctx.register(ECHO)
            yield from ctx.open(end)
            inc = yield from ctx.wait_request()
            yield from ctx.delay(50.0)
            try:
                yield from ctx.reply(inc, (inc.args[0],))
            except RequestAborted as e:
                self.error = e

    cluster = make_cluster("chrysalis")
    client, server = Client(), SlowServer()
    s = cluster.spawn(server, "server")
    c = cluster.spawn(client, "client")
    cluster.create_link(s, c)
    cluster.run_until_quiet(max_ms=1e6)
    assert cluster.all_finished
    assert client.aborted
    assert isinstance(server.error, RequestAborted)
    # and no acknowledgment messages were needed
    assert cluster.metrics.total("wire.messages.ack") == 0
    cluster.check()


def test_abort_before_consumption_withdraws_request():
    """The enclosure comes back because the flag was still set: the
    message never left the shared buffer (§6 item 3)."""

    class Alice(Proc):
        def __init__(self):
            self.aborted = False
            self.kept = None

        def requester(self, ctx, end, enc):
            try:
                yield from ctx.connect(end, GIVE, (enc,))
            except ThreadAborted:
                self.aborted = True

        def main(self, ctx):
            (to_bob,) = ctx.initial_links
            mine, theirs = yield from ctx.new_link()
            self.kept = theirs.end_ref
            t = yield from ctx.fork(self.requester(ctx, to_bob, theirs), "req")
            yield from ctx.delay(5.0)  # written, but Bob never opens
            yield from ctx.abort(t)

    class DeafBob(Proc):
        def main(self, ctx):
            (end,) = ctx.initial_links
            yield from ctx.delay(100.0)

    cluster = make_cluster("chrysalis")
    alice = Alice()
    a = cluster.spawn(alice, "alice")
    b = cluster.spawn(DeafBob(), "bob")
    cluster.create_link(a, b)
    cluster.run_until_quiet(max_ms=1e6)
    assert cluster.all_finished
    assert alice.aborted
    assert cluster.metrics.get("chrysalis.aborts_withdrawn") == 1
    assert cluster.registry.owner_of(alice.kept) == "alice"
    cluster.check()


def test_processor_failure_is_not_detected():
    """§5.2: "Processor failures are currently not detected." — a hard
    node crash leaves the peer blocked forever."""

    class Client(Proc):
        def __init__(self):
            self.got_exception = False

        def main(self, ctx):
            (end,) = ctx.initial_links
            try:
                yield from ctx.connect(end, ECHO, (b"x",))
            except LinkDestroyed:
                self.got_exception = True

    class DoomedServer(Proc):
        def main(self, ctx):
            (end,) = ctx.initial_links
            yield from ctx.delay(1e6)

    cluster = make_cluster("chrysalis")
    client = Client()
    s = cluster.spawn(DoomedServer(), "server")
    c = cluster.spawn(client, "client")
    cluster.create_link(s, c)
    cluster.engine.schedule(10.0, cluster.crash_process, "server",
                            CrashMode.PROCESSOR)
    cluster.run_until_quiet(max_ms=2e6)
    # the client never learns: no exception, never finished
    assert not client.got_exception
    assert "client" in cluster.unfinished()


def test_fault_crash_still_cleans_up():
    """§5.2: "even erroneous processes can clean up their links before
    going away" — a FAULT crash destroys links and the peer learns."""

    class Client(Proc):
        def __init__(self):
            self.error = None

        def main(self, ctx):
            (end,) = ctx.initial_links
            try:
                yield from ctx.connect(end, ECHO, (b"x",))
            except LinkDestroyed as e:
                self.error = e

    class DoomedServer(Proc):
        def main(self, ctx):
            (end,) = ctx.initial_links
            yield from ctx.delay(1e6)

    cluster = make_cluster("chrysalis")
    client = Client()
    s = cluster.spawn(DoomedServer(), "server")
    c = cluster.spawn(client, "client")
    cluster.create_link(s, c)
    cluster.engine.schedule(10.0, cluster.crash_process, "server",
                            CrashMode.FAULT)
    cluster.run_until_quiet(max_ms=2e6)
    assert isinstance(client.error, LinkDestroyed)
    assert cluster.processes["client"].finished
