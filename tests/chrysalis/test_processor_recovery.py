"""§5.2 regression: "Processor failures are currently not detected."

A hard PROCESSOR kill under Chrysalis must keep its paper semantics
with the fault/recovery layer in the tree: peers of the dead node hang
— no eager error, no phantom LinkDestroyed — unless the *runtime* has
been given a `RecoveryPolicy`, in which case the blocked connect is
unwound with a typed `RecoveryExhausted` once the retry budget is
spent.  The kernel still never detects anything; the bound comes from
the language runtime, which is the paper's hints stance (§4.1, §6).
"""

from repro.core.api import (
    BYTES,
    Operation,
    Proc,
    RecoveryExhausted,
    RecoveryPolicy,
    make_cluster,
)
from repro.sim.failure import CrashMode

ECHO = Operation("echo", (BYTES,), (BYTES,))

POLICY = RecoveryPolicy(timeout_ms=50.0, max_retries=3,
                        backoff_factor=2.0, jitter_frac=0.1)


class StuckServer(Proc):
    """Accepts the link but never serves: the request sits unreceived,
    exactly where a processor failure strands it."""

    def main(self, ctx):
        (end,) = ctx.initial_links
        yield from ctx.register(ECHO)
        yield from ctx.open(end)
        yield from ctx.delay(1e6)


class Client(Proc):
    def __init__(self):
        self.error = None
        self.finished_at = None

    def main(self, ctx):
        (end,) = ctx.initial_links
        try:
            yield from ctx.connect(end, ECHO, (b"x",))
        except RecoveryExhausted as e:
            self.error = e
        self.finished_at = yield from ctx.now()


def _run(policy):
    cluster = make_cluster("chrysalis", seed=4)
    if policy is not None:
        cluster.install_recovery(policy)
    client = Client()
    s = cluster.spawn(StuckServer(), "server")
    c = cluster.spawn(client, "client")
    cluster.create_link(s, c)
    cluster.engine.schedule(10.0, cluster.crash_process, "server",
                            CrashMode.PROCESSOR)
    cluster.run_until_quiet(max_ms=2e6)
    return cluster, client


def test_processor_crash_hangs_without_a_policy():
    """No recovery installed: the client must block forever — a
    runtime that eagerly errored here would be *detecting* the
    processor failure the paper says Chrysalis cannot."""
    cluster, client = _run(None)
    assert client.error is None
    assert client.finished_at is None
    assert "client" in cluster.unfinished()


def test_processor_crash_bounded_by_recovery_policy():
    """Recovery installed: the same crash surfaces as a typed
    `RecoveryExhausted` within ~the policy budget (plus jitter), and
    the cluster winds down cleanly."""
    cluster, client = _run(POLICY)
    assert isinstance(client.error, RecoveryExhausted)
    assert cluster.all_finished, cluster.unfinished()
    budget = POLICY.budget_ms()  # 750 ms at these knobs
    # first timeout at t0+50, then three jittered backoffs; jitter is
    # at most 10% per leg, so the unwind lands inside [budget, 1.1x]
    assert client.finished_at is not None
    elapsed = client.finished_at
    assert budget * 0.9 <= elapsed <= budget * 1.2, (elapsed, budget)
    assert cluster.metrics.get("recovery.exhausted") == 1
    assert cluster.metrics.get("recovery.timeouts") == POLICY.max_retries + 1
    assert cluster.metrics.get("recovery.retries") == POLICY.max_retries
    cluster.check()
