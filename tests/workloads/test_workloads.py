"""Integration tests for the reusable workloads on all three kernels."""

import pytest

from repro.core.api import KERNEL_KINDS
from repro.workloads import (
    run_dormant_migration,
    run_migration_churn,
    run_open_close_scenario,
    run_reverse_scenario,
    run_rpc_workload,
    run_skewed_load,
)
from repro.workloads.rpc import raw_charlotte_rpc


@pytest.mark.parametrize("kind", KERNEL_KINDS)
def test_rpc_workload_runs_everywhere(kind):
    r = run_rpc_workload(kind, payload_bytes=64, count=4)
    assert len(r.rtts) == 4
    assert all(t > 0 for t in r.rtts)
    assert r.messages == 10.0  # (4 + 1 warmup) RPCs x 2 messages


def test_rpc_rtt_increases_with_payload():
    small = run_rpc_workload("charlotte", 0, count=3).mean_ms
    big = run_rpc_workload("charlotte", 4096, count=3).mean_ms
    assert big > small


def test_raw_charlotte_is_faster_than_lynx():
    raw = raw_charlotte_rpc(0, count=3).mean_ms
    lynx = run_rpc_workload("charlotte", 0, count=3).mean_ms
    assert raw < lynx


@pytest.mark.parametrize("kind", KERNEL_KINDS)
def test_reverse_scenario_completes(kind):
    d = run_reverse_scenario(kind, rounds=2)
    assert d["messages"] >= d["useful_messages"]
    if kind == "charlotte":
        assert d["unwanted"] >= 2
    else:
        assert d["unwanted"] == 0
        # bounce counters are absent, not zero, where no bouncing exists
        assert "forbid" not in d and "retry" not in d


@pytest.mark.parametrize("kind", KERNEL_KINDS)
def test_open_close_scenario_completes(kind):
    d = run_open_close_scenario(kind, rounds=2)
    if kind == "charlotte":
        assert d["retry"] >= 2
    else:
        assert "retry" not in d
        assert d["messages"] == d["useful_messages"]


@pytest.mark.parametrize("kind", KERNEL_KINDS)
def test_migration_churn_serves_every_hop(kind):
    d = run_migration_churn(kind, members=3, hops=6, seed=1,
                            linger_ms=4000.0)
    assert d["finished"], d
    assert d["rpcs_served"] == 6
    # hops rotate: each RPC answered by member (h % 3)
    assert d["servers_in_hop_order"] == [0, 1, 2, 0, 1, 2]


@pytest.mark.parametrize("kind", KERNEL_KINDS)
def test_dormant_migration_repairs_on_first_use(kind):
    d = run_dormant_migration(kind, members=3, hops=5, seed=1)
    assert d["served_by"] == 5 % 3
    assert d["repair_latency_ms"] is not None


@pytest.mark.parametrize("kind", KERNEL_KINDS)
def test_skewed_load_is_fair(kind):
    d = run_skewed_load(kind, quiet_clients=2, chatty_requests=10)
    assert sorted(set(d["order"])) == [0, 1, 2]
    assert d["worst_chatty_run_before_quiet"] <= 6


@pytest.mark.parametrize("kind", KERNEL_KINDS)
def test_raw_baselines_run_and_are_faster_than_lynx(kind):
    from repro.workloads.raw import raw_rpc

    raw = raw_rpc(kind, 0, count=3)
    lynx = run_rpc_workload(kind, 0, count=3)
    assert len(raw.rtts) == 3
    assert raw.mean_ms < lynx.mean_ms


@pytest.mark.parametrize("kind", KERNEL_KINDS)
def test_raw_baselines_scale_with_payload(kind):
    from repro.workloads.raw import raw_rpc

    small = raw_rpc(kind, 0, count=3).mean_ms
    big = raw_rpc(kind, 2000, count=3).mean_ms
    assert big > small
