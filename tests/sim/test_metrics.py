"""Unit tests for metrics."""

import math

import pytest

from repro.sim.metrics import LatencyRecorder, MetricSet


def test_counter_accumulates():
    m = MetricSet()
    m.count("a.b")
    m.count("a.b", 2)
    m.count("a.c", 5)
    assert m.get("a.b") == 3
    assert m.total("a.") == 8
    assert m.get("missing") == 0


def test_counters_prefix_filter_sorted():
    m = MetricSet()
    m.count("z.1")
    m.count("a.2")
    m.count("a.1")
    assert list(m.counters("a.")) == ["a.1", "a.2"]


def test_latency_summary():
    rec = LatencyRecorder("t")
    for v in [1.0, 2.0, 3.0, 4.0]:
        rec.record(v)
    assert rec.mean == pytest.approx(2.5)
    assert rec.minimum == 1.0
    assert rec.maximum == 4.0
    # percentiles are histogram-backed: exact at the endpoints, within
    # the ~1% construction bound in between
    assert rec.percentile(50) == pytest.approx(2.5, rel=0.02)
    assert rec.percentile(0) == 1.0
    assert rec.percentile(100) == 4.0
    assert rec.count == 4


def test_latency_merge_matches_single_stream():
    xs = [0.5, 1.0, 2.0, 4.0, 8.0, 16.0, 32.0, 64.0]
    whole = LatencyRecorder("w")
    a, b = LatencyRecorder("a"), LatencyRecorder("b")
    for i, v in enumerate(xs):
        whole.record(v)
        (a if i % 2 == 0 else b).record(v)
    a.merge(b)
    assert a.count == whole.count
    assert a.mean == whole.mean
    assert a.minimum == whole.minimum
    assert a.maximum == whole.maximum
    for p in (0, 25, 50, 75, 99, 100):
        assert a.percentile(p) == whole.percentile(p)
    assert a.stddev == pytest.approx(whole.stddev)


def test_latency_empty_is_nan():
    rec = LatencyRecorder()
    assert math.isnan(rec.mean)
    assert math.isnan(rec.percentile(50))


def test_latency_single_sample():
    rec = LatencyRecorder()
    rec.record(7.0)
    assert rec.percentile(50) == 7.0
    assert rec.stddev == 0.0


def test_latency_stddev():
    rec = LatencyRecorder()
    for v in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]:
        rec.record(v)
    assert rec.stddev == pytest.approx(2.138, abs=1e-3)


def test_metricset_latency_is_memoised():
    m = MetricSet()
    assert m.latency("x") is m.latency("x")
    m.latency("x").record(1.0)
    assert m.latencies()["x"].count == 1


def test_snapshot_and_diff():
    m = MetricSet()
    m.count("a", 2)
    before = dict(m.snapshot())
    m.count("a", 3)
    m.count("b")
    d = m.diff(before)
    assert d == {"a": 3, "b": 1}


def test_diff_accepts_bare_counter_dict():
    m = MetricSet()
    m.count("a", 5)
    assert m.diff({"a": 2}) == {"a": 3}


def test_snapshot_is_nested_and_matches_live_reads():
    m = MetricSet()
    m.count("kernel.calls.Send", 3)
    m.count("wire.bytes", 128)
    m.latency("rpc.roundtrip").record(2.0)
    m.latency("rpc.roundtrip").record(4.0)
    snap = m.snapshot()
    assert set(snap) == {"counters", "latencies"}
    assert snap["counters"] == {
        "kernel.calls.Send": m.get("kernel.calls.Send"),
        "wire.bytes": m.get("wire.bytes"),
    }
    lat = snap["latencies"]["rpc.roundtrip"]
    rec = m.latency("rpc.roundtrip")
    assert lat["mean"] == rec.mean
    assert lat["count"] == rec.count
    assert lat["p99"] == rec.percentile(99)
    # a snapshot is a copy: later counts do not leak into it
    m.count("kernel.calls.Send")
    assert snap["counters"]["kernel.calls.Send"] == 3


def test_tree_expands_dotted_names():
    m = MetricSet()
    m.count("kernel.calls.Send", 2)
    m.count("kernel.calls.Wait", 4)
    m.count("wire.bytes", 100)
    assert m.tree() == {
        "kernel": {"calls": {"Send": 2.0, "Wait": 4.0}},
        "wire": {"bytes": 100.0},
    }


def test_tree_handles_leaf_prefix_collision():
    m = MetricSet()
    m.count("a", 1)
    m.count("a.b", 2)
    assert m.tree() == {"a": {"": 1.0, "b": 2.0}}
    m2 = MetricSet()
    m2.count("a.b", 2)
    m2.count("a", 1)
    assert m2.tree() == {"a": {"": 1.0, "b": 2.0}}


def test_reset():
    m = MetricSet()
    m.count("a")
    m.latency("l").record(1.0)
    m.reset()
    assert m.get("a") == 0
    assert m.latencies() == {}
