"""Unit tests for metrics."""

import math

import pytest

from repro.sim.metrics import LatencyRecorder, MetricSet


def test_counter_accumulates():
    m = MetricSet()
    m.count("a.b")
    m.count("a.b", 2)
    m.count("a.c", 5)
    assert m.get("a.b") == 3
    assert m.total("a.") == 8
    assert m.get("missing") == 0


def test_counters_prefix_filter_sorted():
    m = MetricSet()
    m.count("z.1")
    m.count("a.2")
    m.count("a.1")
    assert list(m.counters("a.")) == ["a.1", "a.2"]


def test_latency_summary():
    rec = LatencyRecorder("t")
    for v in [1.0, 2.0, 3.0, 4.0]:
        rec.record(v)
    assert rec.mean == pytest.approx(2.5)
    assert rec.minimum == 1.0
    assert rec.maximum == 4.0
    assert rec.percentile(50) == pytest.approx(2.5)
    assert rec.percentile(0) == 1.0
    assert rec.percentile(100) == 4.0
    assert rec.count == 4


def test_latency_empty_is_nan():
    rec = LatencyRecorder()
    assert math.isnan(rec.mean)
    assert math.isnan(rec.percentile(50))


def test_latency_single_sample():
    rec = LatencyRecorder()
    rec.record(7.0)
    assert rec.percentile(50) == 7.0
    assert rec.stddev == 0.0


def test_latency_stddev():
    rec = LatencyRecorder()
    for v in [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0]:
        rec.record(v)
    assert rec.stddev == pytest.approx(2.138, abs=1e-3)


def test_metricset_latency_is_memoised():
    m = MetricSet()
    assert m.latency("x") is m.latency("x")
    m.latency("x").record(1.0)
    assert m.latencies()["x"].count == 1


def test_snapshot_and_diff():
    m = MetricSet()
    m.count("a", 2)
    before = dict(m.snapshot())
    m.count("a", 3)
    m.count("b")
    d = m.diff(before)
    assert d == {"a": 3, "b": 1}


def test_reset():
    m = MetricSet()
    m.count("a")
    m.latency("l").record(1.0)
    m.reset()
    assert m.get("a") == 0
    assert m.latencies() == {}
