"""The E16 scale workload and its cross-shard edge cases.

The determinism contract under test: `repro.workloads.scale.run_scale`
produces the same digest on every registered backend for the same
parameters — including the three scenarios most likely to break a
conservatively synchronized engine:

* a fault-plan partition window that **spans a lookahead barrier**
  (drops + retries straddling the window boundary);
* `TimerWheel` deadlines landing **exactly on a barrier** (the horizon
  comparison is strict, so a deadline at ``k * lookahead`` must fall
  in the window after the barrier, on every backend);
* link migration (``moves``) pointing one shard's remote clients at a
  server **on a different shard** mid-run.
"""

import pytest

from repro.core.recovery import TimerWheel
from repro.sim.backends import make_engine, registered_sim_backends
from repro.workloads.scale import ScaleResult, run_scale

SHARDED = ("sharded-serial", "sharded-parallel")
BASE = dict(clients=64, requests=3, seed=11)


# ----------------------------------------------------------------------
# the clean digest matrix
# ----------------------------------------------------------------------
@pytest.mark.parametrize("shards", (1, 4))
def test_clean_digest_matrix_across_all_backends(shards):
    runs = {
        backend: run_scale(backend, shards, **BASE)
        for backend in registered_sim_backends()
    }
    ref = runs["global"]
    assert isinstance(ref, ScaleResult)
    assert ref.completed == BASE["clients"] * BASE["requests"]
    for backend, r in runs.items():
        assert r.digest == ref.digest, backend
        assert r.events == ref.events, backend
        assert r.metrics.snapshot() == ref.metrics.snapshot(), backend


def test_merged_timeseries_is_identical_across_backends():
    """Per-shard windowed series, merged (`TimeSeries.merged`), render
    the same on every backend — what `repro top --scenario scale`
    shows cannot depend on the engine."""
    snaps = {}
    for backend in registered_sim_backends():
        r = run_scale(backend, 4, window_ms=1.0, **BASE)
        assert r.timeseries is not None
        assert len(r.timeseries) > 1
        snaps[backend] = r.timeseries.snapshot()
    ref = snaps["global"]
    for backend, snap in snaps.items():
        assert snap == ref, backend


def test_rtt_metrics_are_exact_across_backends():
    ref = run_scale("global", 4, **BASE)
    rtt_ref = ref.metrics.latency("scale.rtt")
    for backend in SHARDED:
        rtt = run_scale(backend, 4, **BASE).metrics.latency("scale.rtt")
        assert rtt.count == rtt_ref.count
        assert rtt.mean == rtt_ref.mean
        assert rtt.percentile(99.0) == rtt_ref.percentile(99.0)


# ----------------------------------------------------------------------
# edge case 1: a partition window spanning a lookahead barrier
# ----------------------------------------------------------------------
def test_partition_window_spanning_a_barrier_stays_bit_identical():
    # lookahead is 0.25 ms, so barriers fall roughly every 0.25 ms of
    # simulated time; the window (0.9, 1.6) straddles several of them
    # and the 1.0 ms retry timeout re-issues *inside* the window too
    kw = dict(partition=(0.9, 1.6), retry_timeout_ms=1.0)
    ref = run_scale("global", 4, **BASE, **kw)
    assert ref.metrics.get("scale.dropped") > 0
    assert ref.metrics.get("scale.retries") > 0
    # dropped requests were retried to completion after the window
    assert ref.completed == BASE["clients"] * BASE["requests"]
    for backend in SHARDED:
        got = run_scale(backend, 4, **BASE, **kw)
        assert got.digest == ref.digest, backend
        assert got.events == ref.events, backend


# ----------------------------------------------------------------------
# edge case 2: TimerWheel deadlines exactly on a barrier
# ----------------------------------------------------------------------
def _wheel_on_barrier(backend):
    """Per-shard timer wheels with deadlines at exact multiples of the
    lookahead — the retry-timeout pattern, pinned to the barrier grid."""
    lookahead = 0.5
    eng = make_engine(backend, shards=2, lookahead_ms=lookahead)
    log = []

    def setup(shard):
        wheel = TimerWheel(eng)
        for k in (1, 2, 3):
            # deadline exactly on barrier k: now is 0, delay = k * la
            wheel.schedule(k * lookahead, log.append,
                           (shard, round(eng.shard_now(shard), 9), k))
        # the k=2 timer is cancelled just before its deadline, like a
        # retry timer whose reply arrived in the nick of time
        doomed = wheel.schedule(2 * lookahead, log.append, (shard, "never"))
        eng.defer(2 * lookahead - 0.1, doomed.cancel)

    for shard in (0, 1):
        eng.defer_on(shard, 0.0, setup, shard)
    fired = eng.run()
    return fired, sorted(log)


def test_timer_wheel_deadline_exactly_on_a_barrier():
    ref = _wheel_on_barrier("global")
    assert ref[1], "wheel timers must actually fire"
    assert all(entry[1] != "never" for entry in ref[1])
    for backend in SHARDED:
        assert _wheel_on_barrier(backend) == ref, backend


def test_retry_deadline_on_barrier_inside_the_scale_workload():
    # retry_timeout_ms equal to a multiple of the 0.25 ms lookahead
    # puts every retry deadline exactly on the barrier grid
    kw = dict(partition=(0.5, 1.0), retry_timeout_ms=0.75)
    ref = run_scale("global", 4, **BASE, **kw)
    assert ref.metrics.get("scale.retries") > 0
    for backend in SHARDED:
        got = run_scale(backend, 4, **BASE, **kw)
        assert got.digest == ref.digest, backend


# ----------------------------------------------------------------------
# edge case 3: link migration across shards
# ----------------------------------------------------------------------
def test_cross_shard_moves_stay_bit_identical():
    # shard 0's remote clients migrate to a server on shard 2 at 2 ms,
    # shard 1's to shard 3 at 3 ms — both endpoints change shards
    kw = dict(moves=[(2.0, 0, 2), (3.0, 1, 3)])
    ref = run_scale("global", 4, **BASE, **kw)
    assert ref.metrics.get("scale.moves") == 2
    assert ref.metrics.get("scale.served_remote") > 0
    for backend in SHARDED:
        got = run_scale(backend, 4, **BASE, **kw)
        assert got.digest == ref.digest, backend
        assert got.metrics.get("scale.moves") == 2, backend


def test_all_three_faults_together_stay_bit_identical():
    kw = dict(partition=(0.9, 1.6), retry_timeout_ms=0.75,
              moves=[(2.0, 0, 2)])
    ref = run_scale("global", 4, **BASE, **kw)
    assert ref.metrics.get("scale.dropped") > 0
    assert ref.metrics.get("scale.moves") == 1
    for backend in SHARDED:
        got = run_scale(backend, 4, **BASE, **kw)
        assert got.digest == ref.digest, backend
