"""The `SimBackend` port contract (`repro.sim.backends`).

Three families of checks:

* **registry** — names resolve, unknown names fail with the registered
  list in the message (the same contract `bench --sim-backend` and
  `benchmarks/verify.py --sim-backend` exit 2 on), duplicates are
  programming errors;
* **determinism** — the oracle chain: `sharded-serial` is bit-identical
  to `global` for every workload at any shard count, `sharded-parallel`
  matches at one shard, repeats and worker counts never change a
  digest;
* **conservative-window safety** — cross-shard work must travel
  through lookahead-bounded `post`, and the engine refuses the calls
  that would break the windows.
"""

import pytest

from repro.sim.backends import (
    DEFAULT_LOOKAHEAD_MS,
    SimBackendProfile,
    make_engine,
    register_sim_backend,
    registered_sim_backends,
    sim_backend_profile,
    sim_backend_profiles,
)
from repro.sim.engine import EngineError

ALL = ("global", "sharded-serial", "sharded-parallel")
SHARDED = ("sharded-serial", "sharded-parallel")


# ----------------------------------------------------------------------
# registry
# ----------------------------------------------------------------------
def test_registry_lists_the_three_backends_in_order():
    assert registered_sim_backends() == ALL
    assert tuple(p.name for p in sim_backend_profiles()) == ALL


def test_profiles_declare_oracle_and_parallel_flags():
    assert sim_backend_profile("global").oracle
    assert sim_backend_profile("sharded-serial").oracle
    assert not sim_backend_profile("sharded-parallel").oracle
    assert sim_backend_profile("sharded-parallel").parallel
    assert not sim_backend_profile("sharded-serial").parallel


def test_unknown_backend_error_names_the_registered_ones():
    with pytest.raises(ValueError) as exc:
        sim_backend_profile("turbo")
    msg = str(exc.value)
    assert "turbo" in msg
    for name in ALL:
        assert name in msg
    with pytest.raises(ValueError):
        make_engine("turbo")


def test_duplicate_registration_is_an_error():
    with pytest.raises(ValueError):
        register_sim_backend(SimBackendProfile(
            name="global", title="imposter", parallel=False, oracle=False,
            factory=lambda **kw: None,
        ))


@pytest.mark.parametrize("backend", ALL)
def test_shard_count_must_be_positive(backend):
    with pytest.raises(EngineError):
        make_engine(backend, shards=0)


@pytest.mark.parametrize("backend", ALL)
def test_engines_report_their_shard_count(backend):
    eng = make_engine(backend, shards=4)
    assert eng.shards == 4
    assert eng.shard_now(3) == 0.0
    with pytest.raises(EngineError):
        eng.shard_now(4)


# ----------------------------------------------------------------------
# determinism: the oracle chain
# ----------------------------------------------------------------------
def _legacy_workload(eng):
    """An untagged workload: schedule chains, cancellations, zero
    delays — everything a cluster does, no shard tags anywhere."""
    log = []

    def tick(i):
        log.append((round(eng.now, 9), "tick", i))
        if i < 8:
            eng.schedule(0.7 * ((i * 5) % 3 + 1), tick, i + 1)
        if i == 2:
            doomed = eng.schedule(50.0, log.append, "never")
            eng.call_soon(doomed.cancel)
        if i == 4:
            eng.defer(0.0, log.append, (round(eng.now, 9), "deferred"))

    for j in range(5):
        eng.schedule((j * 3) % 7 + 0.5, tick, 0)
    fired = eng.run()
    return fired, log


@pytest.mark.parametrize("backend", SHARDED)
@pytest.mark.parametrize("shards", (1, 4))
def test_legacy_untagged_workloads_match_global_exactly(backend, shards):
    ref_fired, ref_log = _legacy_workload(make_engine("global"))
    fired, log = _legacy_workload(make_engine(backend, shards=shards))
    assert (fired, log) == (ref_fired, ref_log)


@pytest.mark.parametrize("shards", (1, 2, 3, 8))
def test_serial_oracle_matches_global_at_any_shard_count(shards):
    from repro.workloads.scale import run_scale

    ref = run_scale("global", shards, clients=48, requests=2, seed=3)
    got = run_scale("sharded-serial", shards, clients=48, requests=2, seed=3)
    assert got.digest == ref.digest
    assert got.events == ref.events


def test_parallel_matches_global_at_one_shard():
    from repro.workloads.scale import run_scale

    ref = run_scale("global", 1, clients=48, requests=2, seed=3)
    got = run_scale("sharded-parallel", 1, clients=48, requests=2, seed=3)
    assert got.digest == ref.digest
    assert got.events == ref.events


def test_parallel_repeats_are_bit_identical():
    from repro.workloads.scale import run_scale

    runs = [
        run_scale("sharded-parallel", 8, clients=64, requests=2, seed=5)
        for _ in range(2)
    ]
    assert runs[0].digest == runs[1].digest
    assert runs[0].events == runs[1].events


def test_forked_workers_match_the_in_process_loop():
    from repro.workloads.scale import run_scale

    inproc = run_scale("sharded-parallel", 4, clients=48, requests=2, seed=7)
    forked = run_scale("sharded-parallel", 4, clients=48, requests=2, seed=7,
                       workers=2)
    assert forked.digest == inproc.digest
    assert forked.events == inproc.events
    # harvest payloads made it back across the process boundary
    assert forked.completed == inproc.completed


# ----------------------------------------------------------------------
# conservative-window safety
# ----------------------------------------------------------------------
def test_parallel_rejects_cross_shard_scheduling_mid_run():
    eng = make_engine("sharded-parallel", shards=2, lookahead_ms=0.5)
    errors = []

    def hop():
        try:
            eng.schedule_on(1, 0.1, lambda: None)
        except EngineError as exc:
            errors.append(str(exc))

    eng.schedule_on(0, 1.0, hop)
    eng.run()
    assert errors and "post()" in errors[0]


@pytest.mark.parametrize("backend", ALL)
def test_post_enforces_the_lookahead_bound(backend):
    eng = make_engine(backend, shards=2, lookahead_ms=0.5)
    eng.bind_receiver(1, lambda key: None)
    with pytest.raises(EngineError):
        eng.post(1, 0.25, "too-fast")
    eng.post(1, 0.5, "ok")
    assert eng.run() == 1


def test_post_without_receiver_is_an_error():
    eng = make_engine("sharded-serial", shards=2)
    with pytest.raises(EngineError):
        eng.post(1, 1.0, "nobody-home")


def test_parallel_step_is_refused():
    eng = make_engine("sharded-parallel", shards=2, lookahead_ms=0.5)
    with pytest.raises(EngineError):
        eng.step()


def test_parallel_with_zero_lookahead_refuses_to_run():
    eng = make_engine("sharded-parallel", shards=2, lookahead_ms=0.0)
    eng.schedule_on(0, 1.0, lambda: None)
    with pytest.raises(EngineError):
        eng.run()


# ----------------------------------------------------------------------
# lookahead adoption from the network layer
# ----------------------------------------------------------------------
@pytest.mark.parametrize("backend", ALL)
def test_note_link_floor_adopts_the_smallest_floor(backend):
    eng = make_engine(backend, shards=2)
    assert eng.lookahead_ms == DEFAULT_LOOKAHEAD_MS
    eng.note_link_floor(0.2)
    assert eng.lookahead_ms == 0.2
    eng.note_link_floor(0.04)
    assert eng.lookahead_ms == 0.04
    eng.note_link_floor(1.0)  # larger: ignored
    assert eng.lookahead_ms == 0.04
    eng.note_link_floor(0.0)  # non-positive: ignored
    assert eng.lookahead_ms == 0.04


@pytest.mark.parametrize("backend", ALL)
def test_explicit_lookahead_is_never_overridden(backend):
    eng = make_engine(backend, shards=2, lookahead_ms=0.5)
    eng.note_link_floor(0.05)
    assert eng.lookahead_ms == 0.5


def test_network_models_register_their_floors():
    from repro.sim.metrics import MetricSet
    from repro.sim.network import TokenRing
    from repro.sim.rng import SimRandom

    eng = make_engine("sharded-serial", shards=2)
    TokenRing(eng, metrics=MetricSet(), rng=SimRandom(0, "ring"))
    assert eng.link_floor_ms > 0.0
    assert eng.lookahead_ms == eng.link_floor_ms


# ----------------------------------------------------------------------
# run() stop conditions on the sharded queues (regression: the general
# engine loop used to read the global heap directly, so until= /
# max_events= runs — run_until_quiet — fired nothing on the oracle)
# ----------------------------------------------------------------------
@pytest.mark.parametrize("backend", ALL)
def test_run_until_stops_the_clock_at_the_bound(backend):
    eng = make_engine(backend, shards=1)
    log = []
    for t in (1.0, 2.0, 7.0):
        eng.schedule(t, log.append, t)
    fired = eng.run(until=3.0)
    assert fired == 2
    assert log == [1.0, 2.0]
    assert eng.now == 3.0
    assert eng.run() == 1


def test_serial_run_honors_max_events():
    eng = make_engine("sharded-serial", shards=2)
    log = []
    for i in range(6):
        eng.schedule_on(i % 2, float(i + 1), log.append, i)
    assert eng.run(max_events=4) == 4
    assert log == [0, 1, 2, 3]
    assert eng.run() == 2


@pytest.mark.parametrize("backend", SHARDED)
def test_cancellation_works_on_sharded_queues(backend):
    eng = make_engine(backend, shards=2, lookahead_ms=0.5)
    log = []
    keep = eng.schedule_on(0, 1.0, log.append, "keep")
    drop = eng.schedule_on(1, 1.0, log.append, "drop")
    drop.cancel()
    assert keep is not drop
    fired = eng.run()
    assert log == ["keep"]
    assert fired == 1
    assert eng.pending == 0


def test_harvest_returns_payloads_in_shard_order():
    eng = make_engine("sharded-serial", shards=3)
    for s in (2, 0, 1):
        eng.bind_harvest(s, lambda s=s: {"shard": s})
    assert [p["shard"] for p in eng.harvest()] == [0, 1, 2]
