"""Unit tests for futures."""

import pytest

from repro.sim.engine import Engine
from repro.sim.futures import (
    Future,
    FutureState,
    InvalidFutureTransition,
    first_of,
    gather,
)


@pytest.fixture
def eng():
    return Engine()


def test_resolve_delivers_value_to_callback(eng):
    fut = Future(eng, "t")
    seen = []
    fut.add_done_callback(lambda f: seen.append(f.value))
    fut.resolve(42)
    assert seen == [42]
    assert fut.state is FutureState.DONE
    assert fut.result() == 42


def test_callback_added_after_settle_runs_immediately(eng):
    fut = Future(eng)
    fut.resolve("x")
    seen = []
    fut.add_done_callback(lambda f: seen.append(f.value))
    assert seen == ["x"]


def test_fail_delivers_error(eng):
    fut = Future(eng)
    err = ValueError("boom")
    fut.fail(err)
    assert fut.state is FutureState.FAILED
    with pytest.raises(ValueError):
        fut.result()


def test_double_resolve_rejected(eng):
    fut = Future(eng)
    fut.resolve(1)
    with pytest.raises(InvalidFutureTransition):
        fut.resolve(2)
    with pytest.raises(InvalidFutureTransition):
        fut.fail(ValueError())


def test_result_on_pending_raises(eng):
    fut = Future(eng)
    with pytest.raises(InvalidFutureTransition):
        fut.result()


def test_resolve_later_fires_at_simulated_time(eng):
    fut = Future(eng)
    times = []
    fut.add_done_callback(lambda f: times.append(eng.now))
    fut.resolve_later(7.5, "v")
    eng.run()
    assert times == [7.5]
    assert fut.value == "v"


def test_resolve_later_is_noop_if_already_settled(eng):
    fut = Future(eng)
    fut.resolve_later(1.0, "late")
    fut.resolve("early")
    eng.run()  # the late event fires but must not raise or overwrite
    assert fut.value == "early"


def test_gather_collects_in_input_order(eng):
    futs = [Future(eng, str(i)) for i in range(3)]
    out = gather(eng, futs)
    futs[2].resolve("c")
    futs[0].resolve("a")
    assert not out.is_settled()
    futs[1].resolve("b")
    assert out.result() == ["a", "b", "c"]


def test_gather_empty_resolves_immediately(eng):
    assert gather(eng, []).result() == []


def test_gather_fails_on_first_failure(eng):
    futs = [Future(eng) for _ in range(2)]
    out = gather(eng, futs)
    futs[1].fail(RuntimeError("dead"))
    assert out.state is FutureState.FAILED
    # late resolution of the other input must not blow up
    futs[0].resolve(1)


def test_first_of_reports_index_and_value(eng):
    futs = [Future(eng) for _ in range(3)]
    out = first_of(eng, futs)
    futs[1].resolve("winner")
    assert out.result() == (1, "winner")
    futs[0].resolve("late")  # ignored


def test_first_of_propagates_failure(eng):
    futs = [Future(eng) for _ in range(2)]
    out = first_of(eng, futs)
    futs[0].fail(KeyError("k"))
    assert out.state is FutureState.FAILED
