"""Unit tests for generator-driven tasks."""

import pytest

from repro.sim.engine import Engine
from repro.sim.futures import Future, FutureState
from repro.sim.tasks import Task, TaskKilled, sleep


@pytest.fixture
def eng():
    return Engine()


def test_task_runs_to_completion_and_returns_value(eng):
    def body():
        yield sleep(eng, 1.0)
        yield sleep(eng, 2.0)
        return "done"

    t = Task(eng, body(), "t")
    eng.run()
    assert t.finished
    assert t.done.result() == "done"
    assert eng.now == 3.0


def test_yield_none_is_cooperative_yield(eng):
    order = []

    def a():
        order.append("a1")
        yield None
        order.append("a2")

    def b():
        order.append("b1")
        yield None
        order.append("b2")

    Task(eng, a(), "a")
    Task(eng, b(), "b")
    eng.run()
    assert order == ["a1", "b1", "a2", "b2"]
    assert eng.now == 0.0


def test_failed_future_raises_inside_generator(eng):
    caught = []

    def body():
        fut = Future(eng)
        fut.fail_later(1.0, ValueError("inner"))
        try:
            yield fut
        except ValueError as e:
            caught.append(str(e))
        return "recovered"

    t = Task(eng, body(), "t")
    eng.run()
    assert caught == ["inner"]
    assert t.done.result() == "recovered"


def test_uncaught_exception_fails_done_future(eng):
    def body():
        yield sleep(eng, 1.0)
        raise RuntimeError("oops")

    t = Task(eng, body(), "t")
    eng.run()
    assert t.done.state is FutureState.FAILED
    with pytest.raises(RuntimeError):
        t.done.result()


def test_yielding_garbage_fails_task(eng):
    def body():
        yield 42

    t = Task(eng, body(), "t")
    eng.run()
    assert t.done.state is FutureState.FAILED
    with pytest.raises(TypeError):
        t.done.result()


def test_kill_raises_taskkilled_at_yield_point(eng):
    progress = []

    def body():
        progress.append("start")
        try:
            yield sleep(eng, 100.0)
            progress.append("unreachable")
        finally:
            progress.append("cleanup")

    t = Task(eng, body(), "t")
    eng.schedule(5.0, t.kill)
    eng.run()
    assert progress == ["start", "cleanup"]
    assert t.done.state is FutureState.FAILED
    assert isinstance(t.done.error, TaskKilled)
    assert eng.now == pytest.approx(100.0)  # the sleep event still fires harmlessly


def test_kill_before_first_step(eng):
    progress = []

    def body():
        progress.append("ran")
        yield sleep(eng, 1.0)

    t = Task(eng, body(), "t")
    t.kill()
    eng.run()
    assert t.done.state is FutureState.FAILED
    # the generator never got to run its first statement
    assert progress == []


def test_kill_finished_task_is_noop(eng):
    def body():
        return "v"
        yield  # pragma: no cover

    t = Task(eng, body(), "t")
    eng.run()
    assert t.done.result() == "v"
    t.kill()
    assert t.done.result() == "v"


def test_taskkilled_not_caught_by_except_exception(eng):
    """Simulated code's `except Exception` must not swallow kills."""
    witness = []

    def body():
        try:
            yield sleep(eng, 10.0)
        except Exception:  # noqa: BLE001 - the point of the test
            witness.append("swallowed")

    t = Task(eng, body(), "t")
    eng.schedule(1.0, t.kill)
    eng.run()
    assert witness == []
    assert isinstance(t.done.error, TaskKilled)


def test_kill_can_be_caught_for_orderly_cleanup(eng):
    """A generator may catch TaskKilled and continue yielding — how
    runtimes run crash clean-up (link destruction) before exiting."""
    steps = []

    def body():
        try:
            yield sleep(eng, 100.0)
        except TaskKilled:
            steps.append("caught")
        yield sleep(eng, 3.0)  # simulated clean-up work
        steps.append("cleaned")
        return "orderly"

    t = Task(eng, body(), "t")
    eng.schedule(10.0, t.kill)
    eng.run()
    assert steps == ["caught", "cleaned"]
    assert t.done.result() == "orderly"
    # the kill was consumed: it is not re-raised during clean-up
    assert eng.now == pytest.approx(100.0)  # stray sleep still fires


def test_second_kill_during_cleanup_is_delivered(eng):
    seen = []

    def body():
        try:
            yield sleep(eng, 100.0)
        except TaskKilled:
            seen.append("first")
        try:
            yield sleep(eng, 50.0)
        except TaskKilled:
            seen.append("second")

    t = Task(eng, body(), "t")
    eng.schedule(10.0, t.kill)
    eng.schedule(20.0, t.kill)
    eng.run()
    assert seen == ["first", "second"]
    assert t.finished


def test_tasks_compose_via_done_future(eng):
    def child():
        yield sleep(eng, 3.0)
        return 7

    def parent():
        c = Task(eng, child(), "child")
        v = yield c.done
        return v * 2

    p = Task(eng, parent(), "parent")
    eng.run()
    assert p.done.result() == 14


def test_sleep_duration(eng):
    stamps = []

    def body():
        yield sleep(eng, 2.5)
        stamps.append(eng.now)
        yield sleep(eng, 0.5)
        stamps.append(eng.now)

    Task(eng, body(), "t")
    eng.run()
    assert stamps == [2.5, 3.0]
