"""Tests for the trace log and sequence charts."""

import pytest

from repro.core.api import BYTES, LINK, Operation, Proc, make_cluster
from repro.sim.engine import Engine
from repro.sim.trace import TraceLog

ECHO = Operation("echo", (BYTES,), (BYTES,))


def test_emit_and_select():
    eng = Engine()
    log = TraceLog(eng)
    log.emit("a", "send", link=1, kind="request")
    eng.now = 5.0
    log.emit("b", "consume", link=1, kind="request")
    log.emit("a", "send", link=2, kind="reply")
    assert len(log.events) == 3
    assert [e.actor for e in log.select(event="send")] == ["a", "a"]
    assert [e.time for e in log.select(link=1)] == [0.0, 5.0]
    assert log.select(actor="b", event="consume")[0].detail["link"] == 1


def test_capacity_bound():
    eng = Engine()
    log = TraceLog(eng, capacity=5)
    for i in range(20):
        log.emit("a", "e", i=i)
    assert len(log.events) == 5
    assert log.events[0].detail["i"] == 15


def test_disabled_log_records_nothing():
    eng = Engine()
    log = TraceLog(eng)
    log.enabled = False
    log.emit("a", "e")
    assert len(log.events) == 0


def test_dump_is_readable():
    eng = Engine()
    log = TraceLog(eng)
    log.emit("proc-1", "send", link=3, kind="request")
    text = log.dump()
    assert "proc-1" in text and "send" in text and "link=3" in text


def test_dump_aligns_long_actors_and_big_timestamps():
    """Formatting regression: actor names longer than the 12-char
    default and timestamps of 6+ digits must not shear the columns —
    every field starts at the same offset on every line."""
    eng = Engine()
    log = TraceLog(eng)
    log.emit("a", "send", link=1)
    eng.now = 123456.789  # 10-char stamp, wider than the default field
    log.emit("a-very-long-process-name", "send", link=2)
    log.emit("b", "an-event-name-past-sixteen", link=3)
    lines = log.dump().splitlines()
    assert len(lines) == 3
    closes = {line.index("]") for line in lines}
    assert len(closes) == 1  # time column closes at one offset
    details = {line.index("link=") for line in lines}
    assert len(details) == 1  # detail column starts at one offset
    assert "[123456.789]" in log.dump()


def test_describe_never_truncates_wide_fields():
    eng = Engine()
    eng.now = 1234567.125
    log = TraceLog(eng)
    log.emit("name-longer-than-twelve-chars", "event-longer-than-sixteen",
             k=1)
    line = log.events[0].describe()
    assert "name-longer-than-twelve-chars" in line
    assert "event-longer-than-sixteen" in line
    assert "[1234567.125]" in line
    assert "k=1" in line
    # narrow content still pads out to the default column widths
    short = TraceLog(Engine())
    short.emit("a", "e", k=1)
    assert short.events[0].describe() \
        == f"[{'0.000':>10}] {'a':<12} {'e':<16} k=1"


def test_sequence_chart_draws_arrows():
    eng = Engine()
    log = TraceLog(eng)
    log.emit("a", "send", peer="b", kind="request", link=1)
    log.emit("b", "send", peer="a", kind="reply", link=1)
    chart = log.sequence_chart(["a", "b"], width=20)
    lines = chart.splitlines()
    assert lines[0].startswith("a")
    req_line = next(l for l in lines if "request" in l)
    rep_line = next(l for l in lines if "reply" in l)
    assert req_line.strip().endswith(">") or ">" in req_line
    assert "<" in rep_line


def test_sequence_chart_filters_by_link():
    eng = Engine()
    log = TraceLog(eng)
    log.emit("a", "send", peer="b", kind="request", link=1)
    log.emit("a", "send", peer="b", kind="noise", link=2)
    chart = log.sequence_chart(["a", "b"], link=1)
    assert "request" in chart and "noise" not in chart


@pytest.mark.parametrize("kind", ("charlotte", "soda", "chrysalis"))
def test_clusters_record_rpc_traces(kind):
    class Server(Proc):
        def main(self, ctx):
            (end,) = ctx.initial_links
            yield from ctx.register(ECHO)
            yield from ctx.open(end)
            inc = yield from ctx.wait_request()
            yield from ctx.reply(inc, (inc.args[0],))

    class Client(Proc):
        def main(self, ctx):
            (end,) = ctx.initial_links
            yield from ctx.connect(end, ECHO, (b"x",))

    cluster = make_cluster(kind)
    s = cluster.spawn(Server(), "server")
    c = cluster.spawn(Client(), "client")
    cluster.create_link(s, c)
    cluster.run_until_quiet(max_ms=1e6)
    sends = cluster.trace.select(event="send")
    consumes = cluster.trace.select(event="consume")
    kinds = {e.detail.get("kind") for e in sends}
    assert {"request", "reply"} <= kinds
    assert len(consumes) >= 2  # request consumed + reply consumed


def test_charlotte_packets_traced_for_figure2():
    """The figure-2 regeneration path: packet-level events exist and
    include the goahead and enc packets."""
    GIVE2 = Operation("give2", (LINK, LINK), ())

    class Giver(Proc):
        def main(self, ctx):
            (to_b,) = ctx.initial_links
            ends = []
            for _ in range(2):
                mine, theirs = yield from ctx.new_link()
                ends.append(theirs)
            yield from ctx.connect(to_b, GIVE2, tuple(ends))

    class Taker(Proc):
        def main(self, ctx):
            (from_a,) = ctx.initial_links
            yield from ctx.register(GIVE2)
            yield from ctx.open(from_a)
            inc = yield from ctx.wait_request()
            yield from ctx.reply(inc, ())

    cluster = make_cluster("charlotte")
    a = cluster.spawn(Giver(), "giver")
    b = cluster.spawn(Taker(), "taker")
    cluster.create_link(a, b)
    cluster.run_until_quiet(max_ms=1e6)
    packets = [e.detail["kind"] for e in cluster.trace.select(event="packet")
               if e.detail.get("link") == 1]
    assert packets == ["request", "goahead", "enc", "reply"]
