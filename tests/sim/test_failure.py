"""Unit tests for failure injection plumbing."""

import pytest

from repro.core.api import BYTES, Operation, Proc, make_cluster
from repro.sim.engine import Engine
from repro.sim.failure import CrashInjector, CrashMode, FailurePlan

ECHO = Operation("echo", (BYTES,), (BYTES,))


def test_failure_plan_builder_chains():
    plan = FailurePlan().kill(10.0, "a").kill(20.0, "b", CrashMode.PROCESSOR)
    assert len(plan.events) == 2
    assert plan.events[1].mode is CrashMode.PROCESSOR


def test_injector_fires_at_scheduled_times():
    eng = Engine()
    fired = []
    inj = CrashInjector(eng, lambda name, mode: fired.append((eng.now, name,
                                                              mode)))
    plan = FailurePlan().kill(5.0, "x").kill(2.0, "y", CrashMode.FAULT)
    inj.apply(plan)
    eng.run()
    assert fired == [
        (2.0, "y", CrashMode.FAULT),
        (5.0, "x", CrashMode.TERMINATE),
    ]
    assert len(inj.injected) == 2


def test_injector_drives_cluster_crashes_end_to_end():
    class Hang(Proc):
        def main(self, ctx):
            yield from ctx.delay(1e9)

    cluster = make_cluster("charlotte")
    cluster.spawn(Hang(), "victim")
    inj = CrashInjector(cluster.engine, cluster.crash_process)
    inj.apply(FailurePlan().kill(50.0, "victim", CrashMode.TERMINATE))
    cluster.run_until_quiet(max_ms=1e6)
    assert cluster.processes["victim"].finished
    assert cluster.metrics.get("cluster.crashes.terminate") == 1


def test_crash_of_already_finished_process_is_noop():
    class Quick(Proc):
        def main(self, ctx):
            yield from ctx.delay(1.0)

    cluster = make_cluster("chrysalis")
    cluster.spawn(Quick(), "quick")
    cluster.run_until_quiet(max_ms=1e5)
    assert cluster.processes["quick"].finished
    cluster.crash_process("quick")  # must not raise or re-kill
    assert cluster.metrics.get("cluster.crashes.terminate") == 0
