"""Unit coverage for the fault plane itself (`repro.sim.faults`):
plan builders, partition geometry, verdict determinism and the
counters — independent of any kernel."""

from repro.sim.engine import Engine
from repro.sim.faults import (
    FaultInjector,
    FaultPlan,
    FaultSpec,
    PartitionWindow,
)
from repro.sim.metrics import MetricSet
from repro.sim.rng import SimRandom
from repro.sim.trace import TraceLog


def make_injector(plan, seed=0, with_trace=False):
    engine = Engine()
    metrics = MetricSet()
    trace = TraceLog(engine) if with_trace else None
    inj = FaultInjector(engine, plan, SimRandom(seed), metrics, trace)
    return engine, metrics, inj


# the plan --------------------------------------------------------------


def test_plan_defaults_are_healthy_and_empty():
    plan = FaultPlan()
    assert plan.empty
    assert plan.spec_for(1).healthy
    assert FaultSpec().healthy


def test_fluent_builders_and_per_link_overrides():
    plan = (FaultPlan()
            .drop(0.1)
            .duplicate(0.2)
            .delay(5.0)
            .drop(0.9, link=3))
    assert not plan.empty
    base = plan.spec_for(1)
    assert (base.drop, base.dup, base.delay_ms) == (0.1, 0.2, 5.0)
    # the override inherits the default's other rates at override time
    three = plan.spec_for(3)
    assert three.drop == 0.9
    assert three.dup == 0.2
    assert not base.healthy and not three.healthy


def test_partition_builder_freezes_groups():
    plan = FaultPlan().partition(10.0, 20.0, a=("x",), b=("y", "z"))
    assert not plan.empty
    (win,) = plan.partitions
    assert (win.t0, win.t1) == (10.0, 20.0)
    assert win.a == frozenset({"x"})
    assert win.b == frozenset({"y", "z"})


# partition geometry ----------------------------------------------------


def test_window_severs_inside_half_open_interval_only():
    win = PartitionWindow(10.0, 20.0, frozenset({"a"}), frozenset({"b"}))
    assert not win.severs("a", "b", 9.99)
    assert win.severs("a", "b", 10.0)
    assert win.severs("b", "a", 15.0)  # symmetric
    assert not win.severs("a", "b", 20.0)  # t1 excluded


def test_window_group_membership():
    win = PartitionWindow(0.0, 100.0, frozenset({"a"}), frozenset({"b"}))
    assert not win.severs("a", "c", 50.0)  # c in neither group
    assert not win.severs("c", "b", 50.0)
    assert not win.severs("a", None, 50.0)  # unknown destination


def test_global_window_severs_everyone():
    win = PartitionWindow(0.0, 100.0)  # a=b=None: everyone
    assert win.severs("anyone", "anywhere", 50.0)
    assert win.severs("p", None, 50.0)


def test_same_process_is_never_partitioned():
    plan = FaultPlan().partition(0.0, 100.0)  # global sever
    _, _, inj = make_injector(plan)
    assert not inj.partitioned("p", "p")
    assert inj.partitioned("p", "q")
    v = inj.judge("p", "p", 1, "request")
    assert not v.drop


# verdicts --------------------------------------------------------------


def test_healthy_plan_judges_clean_without_consuming_randomness():
    _, metrics, inj = make_injector(FaultPlan())
    for _ in range(5):
        v = inj.judge("a", "b", 1, "request")
        assert not (v.drop or v.dup or v.delay_ms or v.partitioned)
    assert metrics.counters("faults.") == {}


def test_partition_drop_is_counted_and_flagged():
    plan = FaultPlan().partition(0.0, 50.0, a=("a",), b=("b",))
    _, metrics, inj = make_injector(plan)
    v = inj.judge("a", "b", 1, "request")
    assert v.drop and v.partitioned
    assert metrics.get("faults.partition_dropped") == 1
    assert metrics.get("faults.dropped") == 0  # random-loss counter


def test_certain_drop_and_certain_dup():
    _, metrics, inj = make_injector(FaultPlan().drop(1.0))
    assert inj.judge("a", "b", 1, "request").drop
    assert metrics.get("faults.dropped") == 1

    _, metrics, inj = make_injector(FaultPlan().duplicate(1.0))
    v = inj.judge("a", "b", 1, "request")
    assert v.dup and not v.drop
    assert metrics.get("faults.duplicated") == 1


def test_delay_draw_is_bounded_and_counted():
    _, metrics, inj = make_injector(FaultPlan().delay(10.0), seed=5)
    draws = [inj.judge("a", "b", 1, "request").delay_ms
             for _ in range(20)]
    assert all(0.0 <= d <= 10.0 for d in draws)
    assert any(d > 0.0 for d in draws)
    assert metrics.get("faults.delayed") == sum(1 for d in draws if d > 0)


def test_judgements_replay_exactly_from_the_seed():
    plan = FaultPlan().drop(0.3).duplicate(0.3).delay(8.0)

    def verdicts(seed):
        _, _, inj = make_injector(plan, seed=seed)
        return [
            (v.drop, v.dup, v.delay_ms)
            for v in (inj.judge("a", "b", 1, "request")
                      for _ in range(30))
        ]

    assert verdicts(4) == verdicts(4)
    assert verdicts(4) != verdicts(5)


def test_links_draw_from_independent_streams():
    """Adding traffic on one link must not perturb another's verdicts."""
    plan = FaultPlan().drop(0.5)

    def link_one_fates(interleave):
        _, _, inj = make_injector(plan, seed=9)
        fates = []
        for _ in range(20):
            if interleave:
                inj.judge("a", "b", 2, "request")  # extra link-2 noise
            fates.append(inj.judge("a", "b", 1, "request").drop)
        return fates

    assert link_one_fates(False) == link_one_fates(True)


def test_healing_is_counted_and_traced():
    plan = FaultPlan().partition(5.0, 30.0, a=("a",), b=("b",))
    engine, metrics, inj = make_injector(plan, with_trace=True)
    engine.run(until=100.0)
    assert metrics.get("faults.partitions_healed") == 1
    healed = inj.trace.select(event="partition-healed")
    assert len(healed) == 1
    assert healed[0].time == 30.0
