"""Unit tests for the discrete-event engine."""

import pytest

from repro.sim.engine import Engine, EngineError


def test_events_fire_in_time_order():
    eng = Engine()
    order = []
    eng.schedule(3.0, order.append, "c")
    eng.schedule(1.0, order.append, "a")
    eng.schedule(2.0, order.append, "b")
    eng.run()
    assert order == ["a", "b", "c"]
    assert eng.now == 3.0


def test_same_instant_events_fire_fifo():
    eng = Engine()
    order = []
    for i in range(10):
        eng.schedule(5.0, order.append, i)
    eng.run()
    assert order == list(range(10))


def test_zero_delay_runs_after_pending_same_instant():
    eng = Engine()
    order = []

    def first():
        order.append("first")
        eng.schedule(0.0, order.append, "third")

    eng.schedule(0.0, first)
    eng.schedule(0.0, order.append, "second")
    eng.run()
    assert order == ["first", "second", "third"]


def test_clock_does_not_go_backwards():
    eng = Engine()
    eng.schedule(10.0, lambda: None)
    eng.run()
    with pytest.raises(EngineError):
        eng.schedule_at(5.0, lambda: None)


def test_negative_delay_rejected():
    eng = Engine()
    with pytest.raises(EngineError):
        eng.schedule(-1.0, lambda: None)


def test_cancel_prevents_firing():
    eng = Engine()
    fired = []
    ev = eng.schedule(1.0, fired.append, "x")
    eng.schedule(2.0, fired.append, "y")
    ev.cancel()
    eng.run()
    assert fired == ["y"]


def test_cancel_is_idempotent():
    eng = Engine()
    ev = eng.schedule(1.0, lambda: None)
    ev.cancel()
    ev.cancel()
    eng.run()
    assert eng.events_fired == 0


def test_run_until_is_inclusive_and_advances_clock():
    eng = Engine()
    fired = []
    eng.schedule(1.0, fired.append, 1)
    eng.schedule(2.0, fired.append, 2)
    eng.schedule(3.0, fired.append, 3)
    eng.run(until=2.0)
    assert fired == [1, 2]
    assert eng.now == 2.0
    eng.run()
    assert fired == [1, 2, 3]


def test_run_until_with_empty_heap_keeps_clock():
    """Quiescence leaves the clock at the last event: `now` reads as
    the workload's true duration, not the (arbitrary) budget."""
    eng = Engine()
    eng.run(until=42.0)
    assert eng.now == 0.0
    eng.schedule(5.0, lambda: None)
    eng.run(until=42.0)
    assert eng.now == 5.0


def test_run_max_events():
    eng = Engine()
    fired = []
    for i in range(5):
        eng.schedule(float(i), fired.append, i)
    n = eng.run(max_events=3)
    assert n == 3
    assert fired == [0, 1, 2]


def test_events_scheduled_during_run_are_honoured():
    eng = Engine()
    seen = []

    def chain(n):
        seen.append(n)
        if n < 4:
            eng.schedule(1.0, chain, n + 1)

    eng.schedule(0.0, chain, 0)
    eng.run()
    assert seen == [0, 1, 2, 3, 4]
    assert eng.now == 4.0


def test_pending_counts_only_uncancelled():
    eng = Engine()
    ev1 = eng.schedule(1.0, lambda: None)
    eng.schedule(2.0, lambda: None)
    ev1.cancel()
    assert eng.pending == 1


def test_trace_hook_sees_each_event():
    eng = Engine()
    traced = []
    eng.trace_hook = lambda e, ev: traced.append(ev.time)
    eng.schedule(1.0, lambda: None)
    eng.schedule(2.0, lambda: None)
    eng.run()
    assert traced == [1.0, 2.0]


def test_determinism_across_identical_runs():
    def build_and_run():
        eng = Engine()
        log = []
        for i in range(50):
            eng.schedule((i * 7) % 13 + 0.5, log.append, i)
        eng.run()
        return log

    assert build_and_run() == build_and_run()


def test_profile_off_by_default():
    eng = Engine()
    eng.schedule(1.0, lambda: None)
    eng.run()
    assert eng.profile is None


def test_profile_records_counts_and_wall_clock():
    from repro.sim.engine import DispatchProfile

    eng = Engine(profile=True)
    assert isinstance(eng.profile, DispatchProfile)

    def slow():
        sum(range(1000))

    def fast():
        pass

    for _ in range(3):
        eng.schedule(1.0, slow)
    eng.schedule(2.0, fast)
    eng.run()
    d = eng.profile.as_dict()
    slow_key = next(k for k in d if "slow" in k)
    fast_key = next(k for k in d if "fast" in k)
    assert d[slow_key]["count"] == 3
    assert d[fast_key]["count"] == 1
    assert d[slow_key]["wall_ms"] >= 0.0
    rows = eng.profile.rows()
    assert {r[0] for r in rows} == {slow_key, fast_key}
    assert rows == sorted(rows, key=lambda r: r[2], reverse=True)
    rendered = eng.profile.render()
    assert "count" in rendered and slow_key in rendered


def test_profile_key_for_non_function_callables():
    import functools

    from repro.sim.engine import _callback_key

    assert "test_profile_key" in _callback_key(
        test_profile_key_for_non_function_callables
    )
    assert _callback_key(functools.partial(print, 1)) == "partial"


def test_cluster_threads_profile_flag_through():
    from repro.core.api import make_cluster

    for kind in ("charlotte", "soda", "chrysalis"):
        assert make_cluster(kind).engine.profile is None
        cluster = make_cluster(kind, profile=True)
        assert cluster.engine.profile is not None


# ----------------------------------------------------------------------
# the no-argument fast path (PR 6; docs/PERFORMANCE.md)
# ----------------------------------------------------------------------
def test_fast_path_matches_general_loop_exactly():
    """`run()` with no stop condition takes a hoisted loop; it must be
    observationally identical to `run(max_events=huge)` (which takes
    the general loop): same firing order, clock, events_fired."""

    def drive(run_kwargs):
        eng = Engine()
        fired = []

        def tick(label, depth):
            fired.append((eng.now, label))
            if depth:
                eng.schedule(1.5, tick, label, depth - 1)

        a = eng.schedule(2.0, tick, "a", 3)
        eng.schedule(1.0, tick, "b", 2)
        eng.schedule(1.0, tick, "c", 0)
        a.cancel()
        n = eng.run(**run_kwargs)
        return fired, eng.now, eng.events_fired, n

    fast = drive({})
    general = drive({"max_events": 10_000})
    assert fast == general


def test_fast_path_counts_events_fired_once():
    eng = Engine()
    eng.schedule(1.0, lambda: None)
    eng.schedule(2.0, lambda: None)
    assert eng.run() == 2
    assert eng.events_fired == 2
    eng.schedule(1.0, lambda: None)
    assert eng.run() == 1
    assert eng.events_fired == 3


def test_fast_path_skips_cancelled_and_propagates_exceptions():
    eng = Engine()

    def boom():
        raise RuntimeError("boom")

    ok = eng.schedule(1.0, lambda: None)
    eng.schedule(2.0, boom)
    ok.cancel()
    with pytest.raises(RuntimeError):
        eng.run()
    # the count was still flushed on the way out
    assert eng.events_fired == 1
    assert eng.now == 2.0


def test_trace_hook_and_profile_divert_to_the_general_loop():
    seen = []
    eng = Engine(profile=True)
    eng.trace_hook = lambda e, ev: seen.append(ev.time)
    eng.schedule(1.0, lambda: None)
    eng.schedule(2.0, lambda: None)
    assert eng.run() == 2  # no args, but hooks force the general loop
    assert seen == [1.0, 2.0]
    assert sum(eng.profile.counts.values()) == 2
