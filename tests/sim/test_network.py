"""Unit tests for the interconnect models."""

import pytest

from repro.sim.engine import Engine
from repro.sim.metrics import MetricSet
from repro.sim.network import CSMABus, SharedMemoryInterconnect, TokenRing
from repro.sim.rng import SimRandom


@pytest.fixture
def eng():
    return Engine()


def test_token_ring_serialisation_rate(eng):
    ring = TokenRing(eng, rate_mbit=10.0, access_delay_ms=0.0)
    # 10 Mbit/s = 1.25 bytes/us -> 1000 bytes = 0.8 ms
    assert ring.transit_time(1000) == pytest.approx(0.8)
    assert ring.transit_time(0) == pytest.approx(0.0)


def test_token_ring_access_delay_added(eng):
    ring = TokenRing(eng, access_delay_ms=0.05)
    assert ring.transit_time(0) == pytest.approx(0.05)


def test_deliver_schedules_callback_and_counts(eng):
    m = MetricSet()
    ring = TokenRing(eng, metrics=m, access_delay_ms=0.1)
    arrived = []
    dt = ring.deliver(100, lambda: arrived.append(eng.now), kind="request")
    assert ring.inflight == 1
    eng.run()
    assert ring.inflight == 0
    assert arrived == [pytest.approx(dt)]
    assert m.get("wire.frames.request") == 1
    assert m.get("wire.bytes") == 100


def test_csma_slower_per_byte_than_ring(eng):
    ring = TokenRing(eng, access_delay_ms=0.0)
    bus = CSMABus(eng, base_access_ms=0.0, max_backoff_ms=0.0)
    assert bus.transit_time(1000) > ring.transit_time(1000)
    # 1 Mbit/s -> 8 us/byte -> 8 ms for 1000 bytes
    assert bus.transit_time(1000) == pytest.approx(8.0)


def test_csma_backoff_is_bounded_and_seeded(eng):
    bus = CSMABus(
        eng, rng=SimRandom(7, "bus"), base_access_ms=0.2, max_backoff_ms=0.4
    )
    times = [bus.transit_time(0) for _ in range(100)]
    assert all(0.2 <= t <= 0.6 for t in times)
    bus2 = CSMABus(
        eng, rng=SimRandom(7, "bus"), base_access_ms=0.2, max_backoff_ms=0.4
    )
    assert times == [bus2.transit_time(0) for _ in range(100)]


def test_csma_broadcast_loss_zero_reaches_everyone(eng):
    bus = CSMABus(eng, broadcast_loss=0.0)
    heard = []
    reached = bus.broadcast(10, [lambda: heard.append(1), lambda: heard.append(2)])
    eng.run()
    assert reached == 2
    assert sorted(heard) == [1, 2]


def test_csma_broadcast_loss_one_reaches_no_one(eng):
    m = MetricSet()
    bus = CSMABus(eng, metrics=m, broadcast_loss=1.0)
    heard = []
    reached = bus.broadcast(10, [lambda: heard.append(1)])
    eng.run()
    assert reached == 0
    assert heard == []
    assert m.get("wire.broadcast_lost") == 1


def test_csma_broadcast_loss_statistics(eng):
    bus = CSMABus(eng, rng=SimRandom(3, "b"), broadcast_loss=0.3)
    total = 0
    for _ in range(200):
        total += bus.broadcast(1, [lambda: None] * 5)
    # expect ~0.7 * 1000 = 700 deliveries; allow generous slack
    assert 600 < total < 800


def test_shared_memory_costs_are_microscopic(eng):
    sm = SharedMemoryInterconnect(eng, per_byte_us=0.55, hop_us=4.0)
    # 1000-byte copy ~ 0.554 ms; tiny next to Charlotte's per-message ms
    assert sm.transit_time(1000) == pytest.approx(0.004 + 0.55)
    assert sm.transit_time(0) == pytest.approx(0.004)
