"""Grand chaos: migration + crashes + degraded broadcasts, together.

The nastiest combination the paper discusses: link ends moving between
processes *while* processes crash and (on SODA) broadcasts are lossy —
"node crashes ... would tend to precipitate a large number of
broadcast searches for lost links" (§4.2).  The test asserts only the
invariants that must survive any interleaving:

* the simulation quiesces (no livelock);
* no process dies of an internal error (`cluster.check`);
* the registry stays structurally consistent;
* every capability that was successfully used produced a correct
  answer;
* nothing is LOST except, on Charlotte, enclosures caught by a crash
  inside the §3.2.2 window (the documented deviation).
"""

import pytest

from repro.core.api import (
    INT,
    KERNEL_KINDS,
    LINK,
    LinkDestroyed,
    LynxError,
    Operation,
    Proc,
    make_cluster,
)
from repro.sim.failure import CrashMode
from repro.sim.rng import SimRandom

GIVE = Operation("give", (LINK,), ())
WORK = Operation("work", (INT,), (INT,))


class Churner(Proc):
    """Mints links, serves work on kept ends, passes moving ends to a
    random neighbour, repeatedly; absorbs whatever failures arrive."""

    def __init__(self, ident: int, rng: SimRandom, rounds: int) -> None:
        self.ident = ident
        self.rng = rng.child(f"churner{ident}")
        self.rounds = rounds
        self.correct = 0
        self.wrong = 0

    def serve_kept(self, ctx, end):
        try:
            yield from ctx.open(end)
            inc = yield from ctx.wait_request([end])
            yield from ctx.reply(inc, (inc.args[0] * 7,))
        except LynxError:
            pass

    def use_received(self, ctx, end, probe):
        try:
            (v,) = yield from ctx.connect(end, WORK, (probe,))
            if v == probe * 7:
                self.correct += 1
            else:
                self.wrong += 1
        except LynxError:
            pass  # the holder crashed or the link died: acceptable

    def main(self, ctx):
        neighbours = list(ctx.initial_links)
        yield from ctx.register(GIVE, WORK)
        for link in neighbours:
            yield from ctx.open(link)
        # every round: maybe mint-and-send, maybe serve an incoming GIVE
        for r in range(self.rounds):
            if self.rng.bernoulli(0.6) and neighbours:
                try:
                    mine, theirs = yield from ctx.new_link()
                    yield from ctx.fork(
                        self.serve_kept(ctx, mine), f"serve{r}"
                    )
                    target = self.rng.choice(neighbours)
                    yield from ctx.connect(target, GIVE, (theirs,))
                except LynxError:
                    pass
            else:
                yield from ctx.delay(self.rng.uniform(1.0, 30.0))
            # drain any GIVEs that arrived, using them as capabilities
            while True:
                drained = False
                for link in neighbours:
                    es = ctx._runtime.ends.get(link.end_ref)
                    if es is None:
                        continue
                    if ctx._runtime.rt_request_available(es):
                        try:
                            inc = yield from ctx.wait_request(neighbours)
                        except LynxError:
                            break
                        if inc.op.name == "give":
                            cap = inc.args[0]
                            try:
                                yield from ctx.reply(inc, ())
                            except LynxError:
                                break
                            yield from ctx.fork(
                                self.use_received(ctx, cap, r + 1),
                                f"use{r}",
                            )
                        else:
                            try:
                                yield from ctx.reply(
                                    inc, (inc.args[0] * 7,)
                                )
                            except LynxError:
                                break
                        drained = True
                        break
                if not drained:
                    break
        yield from ctx.delay(200.0)


@pytest.mark.parametrize("kind", KERNEL_KINDS)
@pytest.mark.parametrize("seed", [11, 12])
def test_grand_chaos(kind, seed):
    rng = SimRandom(seed, f"chaos/{kind}")
    kw = {}
    if kind == "soda":
        kw["broadcast_loss"] = 0.4
    cluster = make_cluster(kind, seed=seed, **kw)
    N = 4
    progs = [Churner(i, rng, rounds=5) for i in range(N)]
    handles = [cluster.spawn(p, f"ch{i}") for i, p in enumerate(progs)]
    for i in range(N):
        for j in range(i + 1, N):
            cluster.create_link(handles[i], handles[j])
    # one orderly crash mid-run
    victim = rng.randint(0, N - 1)
    cluster.engine.schedule(
        rng.uniform(50.0, 400.0),
        cluster.crash_process,
        f"ch{victim}",
        CrashMode.TERMINATE,
    )
    cluster.run_until_quiet(max_ms=1e6)

    # quiescence and internal health
    cluster.check()
    # every exercised capability gave the right answer
    for p in progs:
        assert p.wrong == 0, (kind, seed, p.ident)
    # conservation: the hint-based kernels lose nothing, ever.  On
    # Charlotte an enclosure that was kernel-matched into the victim
    # but never delivered to its runtime is in limbo when the crash
    # lands — the §3.2.2 deviation family — so losses there are
    # possible (and each must involve the crashed process's kernel
    # table, which the registry log records as 'lost').
    lost = cluster.registry.lost_ends()
    if kind == "charlotte":
        assert len(lost) <= 3, (seed, lost)
    else:
        assert lost == [], (kind, seed, lost)
    problems = cluster.registry.check_invariants()
    assert problems == []
