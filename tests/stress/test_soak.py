"""Randomised soak: a small society of LYNX processes under churn.

Seeded random clients issue mixed RPC traffic at a farm of entry-style
servers while crash injection removes some clients mid-run.  On every
kernel, for every seed: surviving clients observe correct replies,
servers wind down cleanly when their links die, the registry's
structural invariants hold, and nothing is lost.

This is the repository's integration pressure test: it crosses the
entry layer, the queue/fairness machinery, typed marshalling, link
destruction on termination, and each kernel's full transport.
"""

import pytest

from repro.core.api import (
    BYTES,
    INT,
    KERNEL_KINDS,
    LinkDestroyed,
    Operation,
    Proc,
)
from repro.core.api import make_cluster
from repro.core.entries import call, serve
from repro.sim.failure import CrashMode
from repro.sim.rng import SimRandom

ECHO = Operation("echo", (BYTES,), (BYTES,))
MUL = Operation("mul", (INT, INT), (INT,))

SERVERS = 2
CLIENTS = 4
OPS_PER_CLIENT = 6


class FarmServer(Proc):
    def __init__(self):
        self.served = None

    def main(self, ctx):
        self.served = yield from serve(
            ctx,
            ctx.initial_links,
            {
                ECHO: lambda b: (b,),
                MUL: lambda a, b: (a * b,),
            },
        )


class RandomClient(Proc):
    def __init__(self, ident: int, rng: SimRandom):
        self.ident = ident
        self.rng = rng.child(f"client{ident}")
        self.checked = 0
        self.failed = None

    def main(self, ctx):
        links = list(ctx.initial_links)
        try:
            for _ in range(OPS_PER_CLIENT):
                link = self.rng.choice(links)
                if self.rng.bernoulli(0.3):
                    yield from ctx.delay(self.rng.uniform(0.0, 40.0))
                if self.rng.bernoulli(0.5):
                    blob = bytes(
                        self.rng.randint(0, 255)
                        for _ in range(self.rng.randint(0, 64))
                    )
                    out = yield from call(ctx, link, ECHO, blob)
                    assert out == blob
                else:
                    a = self.rng.randint(-99, 99)
                    b = self.rng.randint(-99, 99)
                    out = yield from call(ctx, link, MUL, a, b)
                    assert out == a * b
                self.checked += 1
        except LinkDestroyed as e:  # a crashed sibling we depended on?
            self.failed = e  # links here are client<->server only; a
            # server never crashes in this test, so record and fail


@pytest.mark.parametrize("kind", KERNEL_KINDS)
@pytest.mark.parametrize("seed", [1, 2, 3])
def test_soak_with_client_crashes(kind, seed):
    rng = SimRandom(seed, f"soak/{kind}")
    cluster = make_cluster(kind, seed=seed)
    servers = [FarmServer() for _ in range(SERVERS)]
    server_handles = [
        cluster.spawn(s, f"server{i}") for i, s in enumerate(servers)
    ]
    clients = [RandomClient(i, rng) for i in range(CLIENTS)]
    client_handles = [
        cluster.spawn(c, f"client{i}") for i, c in enumerate(clients)
    ]
    for ch in client_handles:
        for sh in server_handles:
            cluster.create_link(sh, ch)
    # crash one or two clients mid-run, orderly (TERMINATE): their
    # termination destroys their links, which the servers must absorb
    doomed = rng.sample(range(CLIENTS), rng.randint(1, 2))
    for i in doomed:
        when = rng.uniform(10.0, 400.0)
        cluster.engine.schedule(
            when, cluster.crash_process, f"client{i}", CrashMode.TERMINATE
        )
    cluster.run_until_quiet(max_ms=1e6)

    assert cluster.all_finished, (kind, seed, cluster.unfinished())
    survivors = [c for i, c in enumerate(clients) if i not in doomed]
    for c in survivors:
        assert c.failed is None, (kind, seed, c.ident, c.failed)
        assert c.checked == OPS_PER_CLIENT
    # servers wound down once every client link died
    for s in servers:
        assert s.served is not None
    total_served = sum(s.served for s in servers)
    assert total_served >= len(survivors) * OPS_PER_CLIENT
    # nothing lost, registry consistent
    assert cluster.registry.lost_ends() == []
    cluster.check()
