"""JSONL trace export: round-trips, streaming, schema stability."""

import json

import pytest

from repro.core.api import BYTES, Operation, Proc, make_cluster
from repro.obs import JsonlTraceWriter, load_trace
from repro.sim.engine import Engine
from repro.sim.trace import TRACE_SCHEMA_VERSION, TraceEvent, TraceLog

ECHO = Operation("echo", (BYTES,), (BYTES,))


class _Server(Proc):
    def main(self, ctx):
        (end,) = ctx.initial_links
        yield from ctx.register(ECHO)
        yield from ctx.open(end)
        inc = yield from ctx.wait_request()
        yield from ctx.reply(inc, (inc.args[0],))


class _Client(Proc):
    def main(self, ctx):
        (end,) = ctx.initial_links
        yield from ctx.connect(end, ECHO, (b"x",))


def _run_cluster(kind="charlotte", **kw):
    cluster = make_cluster(kind, **kw)
    s = cluster.spawn(_Server(), "server")
    c = cluster.spawn(_Client(), "client")
    cluster.create_link(s, c)
    cluster.run_until_quiet(max_ms=1e6)
    assert cluster.all_finished
    return cluster


def test_event_record_round_trip():
    eng = Engine()
    log = TraceLog(eng)
    log.emit("a", "send", link=1, kind="request", peer="b")
    rec = log.events[0].to_record()
    assert rec == {"t": 0.0, "actor": "a", "event": "send",
                   "detail": {"link": 1, "kind": "request", "peer": "b"}}
    assert TraceEvent.from_record(json.loads(log.events[0].to_json())) \
        == log.events[0]


def test_to_jsonl_header_carries_schema_version():
    eng = Engine()
    log = TraceLog(eng, capacity=77)
    log.emit("a", "e")
    lines = log.to_jsonl().splitlines()
    head = json.loads(lines[0])
    assert head["schema"] == "repro.trace"
    assert head["version"] == TRACE_SCHEMA_VERSION
    assert head["capacity"] == 77
    assert len(lines) == 2


def test_unknown_schema_version_rejected():
    bad = json.dumps({"schema": "repro.trace", "version": 999})
    with pytest.raises(ValueError):
        TraceLog.from_jsonl(bad)


def test_version1_stream_still_loads():
    """v1 streams (no ``span`` field anywhere) round-trip: a v1 header
    is accepted and the events reload identically."""
    v1 = "\n".join([
        json.dumps({"capacity": 50, "schema": "repro.trace", "version": 1}),
        json.dumps({"t": 1.5, "actor": "a", "event": "send",
                    "detail": {"link": 1}}),
        json.dumps({"t": 2.5, "actor": "b", "event": "consume",
                    "detail": {"link": 1}}),
    ])
    log = TraceLog.from_jsonl(v1)
    assert [(e.time, e.actor, e.event) for e in log.events] \
        == [(1.5, "a", "send"), (2.5, "b", "consume")]
    assert all(e.span is None for e in log.events)
    # re-exporting and reloading reproduces the same records
    again = TraceLog.from_jsonl(log.to_jsonl())
    assert [e.to_record() for e in again.events] \
        == [e.to_record() for e in log.events]


def test_version2_span_events_round_trip():
    """v2 round-trip: span payloads survive export + reload, and
    span-less events still serialise without a ``span`` key."""
    eng = Engine()
    log = TraceLog(eng)
    payload = {"trace": 1, "id": 2, "parent": None, "layer": "kernel",
               "name": "transfer", "host": "a", "t0": 0.0, "t1": 3.5}
    log.emit("a", "span", span=payload)
    log.emit("a", "send", link=1)
    rec = json.loads(log.events[0].to_json())
    assert rec["span"] == payload
    assert "span" not in json.loads(log.events[1].to_json())
    head = json.loads(log.to_jsonl().splitlines()[0])
    assert head["version"] == TRACE_SCHEMA_VERSION == 2
    replayed = TraceLog.from_jsonl(log.to_jsonl())
    assert replayed.events[0].span == payload
    assert replayed.events[1].span is None
    assert [e.to_record() for e in replayed.events] \
        == [e.to_record() for e in log.events]


def test_round_trip_renders_identical_sequence_chart():
    """The satellite-task guarantee: export + reload reproduces the
    same figure-2-style chart as the live log."""
    cluster = _run_cluster("charlotte")
    replayed = TraceLog.from_jsonl(cluster.trace.to_jsonl())
    for events in (None, {"packet"}, {"send"}):
        live = cluster.trace.sequence_chart(
            ["server", "client"], events=events, link=1
        )
        offline = replayed.sequence_chart(
            ["server", "client"], events=events, link=1
        )
        assert live == offline


def test_detached_log_refuses_emit():
    replayed = TraceLog.from_jsonl("")
    with pytest.raises(ValueError):
        replayed.emit("a", "e")


def test_streaming_writer_matches_snapshot_export(tmp_path):
    path = tmp_path / "trace.jsonl"
    cluster = make_cluster("chrysalis")
    with JsonlTraceWriter(path, cluster.trace) as w:
        s = cluster.spawn(_Server(), "server")
        c = cluster.spawn(_Client(), "client")
        cluster.create_link(s, c)
        cluster.run_until_quiet(max_ms=1e6)
    assert w.lines_written == len(cluster.trace.events) > 0
    streamed = load_trace(path)
    assert [e.to_record() for e in streamed.events] \
        == [e.to_record() for e in cluster.trace.events]
    # detached after close: further events are not written
    before = path.read_text()
    cluster.trace.emit("x", "late")
    assert path.read_text() == before


def test_streaming_writer_sees_past_capacity(tmp_path):
    """The writer's purpose: events evicted from the bounded deque are
    still on disk."""
    eng = Engine()
    log = TraceLog(eng, capacity=5)
    path = tmp_path / "t.jsonl"
    with JsonlTraceWriter(path, log):
        for i in range(20):
            log.emit("a", "e", i=i)
    streamed = load_trace(path)
    assert len(log.events) == 5
    assert len(streamed.events) == 20
    assert streamed.events[0].detail["i"] == 0


def test_non_json_detail_degrades_to_repr():
    eng = Engine()
    log = TraceLog(eng)
    log.emit("a", "e", obj={1, 2})
    rec = json.loads(log.events[0].to_json())
    assert "1" in rec["detail"]["obj"]  # repr of the set
