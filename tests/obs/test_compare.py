"""`repro.obs.compare` + ``bench --compare``: report schema against the
golden file, direction classification, threshold gating, mixed
quick/full behavior, and the CI perf-gate scenario — a deliberately
slowed codec must fail the compare exactly the way the ``perf`` job
would fail the PR."""

import copy
import json
import os

import pytest

from repro.cli import main as cli_main
from repro.obs.compare import (
    COMPARE_SCHEMA,
    COMPARE_SCHEMA_VERSION,
    CompareError,
    compare_docs,
    compare_files,
    is_wall_metric,
    load_bench_doc,
    metric_direction,
    render_report,
)

ROOT = os.path.join(os.path.dirname(__file__), os.pardir, os.pardir)
BASELINE = os.path.join(ROOT, "BENCH_PR7.json")
GOLDEN = os.path.join(os.path.dirname(__file__), "golden_compare_schema.json")


def _baseline_doc():
    with open(BASELINE) as fh:
        return json.load(fh)


# ----------------------------------------------------------------------
# classification
# ----------------------------------------------------------------------
def test_metric_direction_rules():
    assert metric_direction("ideal_rpc0_ms") == "lower"
    assert metric_direction("rpc_sim_wall_ms_ideal") == "lower"
    assert metric_direction("engine_events_per_sec") == "higher"
    assert metric_direction("soda_faulted_goodput_per_s") == "higher"
    assert metric_direction("crossover_bytes") == "info"
    assert metric_direction("charlotte_completed") == "info"
    assert metric_direction("charlotte_runtime_share") == "info"


def test_wall_metric_rules():
    assert is_wall_metric("engine_events_per_sec")
    assert is_wall_metric("rpc_sim_wall_ms_charlotte")
    assert not is_wall_metric("ideal_rpc0_ms")
    assert not is_wall_metric("rpc_sim_events_ideal")


# ----------------------------------------------------------------------
# report structure
# ----------------------------------------------------------------------
def test_self_compare_is_clean_and_matches_golden_schema():
    report = compare_files(BASELINE, BASELINE)
    with open(GOLDEN) as fh:
        golden = json.load(fh)
    assert report["schema"] == COMPARE_SCHEMA == golden["schema"]
    assert report["schema_version"] == COMPARE_SCHEMA_VERSION \
        == golden["schema_version"]
    assert sorted(report) == golden["top_level"]
    assert sorted(report["old"]) == golden["meta_keys"]
    assert report["status"] == "ok"
    assert report["regressions"] == [] and report["improvements"] == []
    for rows in report["benches"].values():
        for row in rows.values():
            assert sorted(row) == golden["row_keys"]
            assert row["direction"] in golden["directions"]
            assert row["status"] in golden["statuses"]
    # the report must be JSON-serializable as-is (CI uploads it)
    json.dumps(report)


def test_load_rejects_non_bench_documents(tmp_path):
    bad = tmp_path / "x.json"
    bad.write_text('{"schema": "something-else"}')
    with pytest.raises(CompareError):
        load_bench_doc(str(bad))
    with pytest.raises(CompareError):
        load_bench_doc(str(tmp_path / "missing.json"))


# ----------------------------------------------------------------------
# gating
# ----------------------------------------------------------------------
def test_latency_regression_beyond_threshold_flags():
    old = _baseline_doc()
    new = copy.deepcopy(old)
    new["benches"]["E1"]["ideal_rpc0_ms"] *= 1.2  # 20% slower
    report = compare_docs(old, new, threshold=0.10)
    assert report["status"] == "regression"
    assert "E1.ideal_rpc0_ms" in report["regressions"]


def test_rate_regression_is_a_drop_not_a_rise():
    old = _baseline_doc()
    new = copy.deepcopy(old)
    new["benches"]["E14"]["ideal_faulted_goodput_per_s"] *= 0.8
    report = compare_docs(old, new, threshold=0.10)
    assert "E14.ideal_faulted_goodput_per_s" in report["regressions"]
    # a 20% *higher* goodput is an improvement, not a regression
    new["benches"]["E14"]["ideal_faulted_goodput_per_s"] = \
        old["benches"]["E14"]["ideal_faulted_goodput_per_s"] * 1.2
    report = compare_docs(old, new, threshold=0.10)
    assert "E14.ideal_faulted_goodput_per_s" in report["improvements"]
    assert report["status"] == "ok"


def test_wall_metrics_use_the_loose_threshold():
    old = _baseline_doc()
    new = copy.deepcopy(old)
    new["benches"]["S1"]["engine_events_per_sec"] *= 0.6  # -40%: noise
    report = compare_docs(old, new, threshold=0.10, wall_threshold=0.75)
    assert report["status"] == "ok"
    new["benches"]["S1"]["engine_events_per_sec"] = \
        old["benches"]["S1"]["engine_events_per_sec"] * 0.2  # -80%: real
    report = compare_docs(old, new, threshold=0.10, wall_threshold=0.75)
    assert "S1.engine_events_per_sec" in report["regressions"]


def test_mixed_quick_full_gates_only_iteration_invariant_metrics():
    old = _baseline_doc()
    new = copy.deepcopy(old)
    new["quick"] = True  # as the CI perf job's quick run
    # E14's window differs between modes: a big goodput delta is info
    new["benches"]["E14"]["ideal_faulted_goodput_per_s"] *= 0.5
    # per-op simulated latency is mode-invariant: still gated
    new["benches"]["E1"]["ideal_rpc0_ms"] *= 1.5
    report = compare_docs(old, new, threshold=0.10)
    assert report["mixed_mode"] is True
    assert report["regressions"] == ["E1.ideal_rpc0_ms"]
    status = report["benches"]["E14"]["ideal_faulted_goodput_per_s"]["status"]
    assert status == "info"


def test_info_metrics_never_gate():
    old = _baseline_doc()
    new = copy.deepcopy(old)
    new["benches"]["E4"]["crossover_bytes"] = 9999
    report = compare_docs(old, new)
    assert report["status"] == "ok"


# ----------------------------------------------------------------------
# the CI perf gate, end to end through the CLI
# ----------------------------------------------------------------------
def _write(tmp_path, name, doc):
    path = tmp_path / name
    path.write_text(json.dumps(doc))
    return str(path)


def test_ci_perf_gate_fails_a_deliberately_slowed_codec(tmp_path, capsys):
    """The scenario the ``perf`` job exists for: a change that slows
    the codec hot path degrades the gated simulated latencies and the
    exact CI command exits 1."""
    old = _baseline_doc()
    slowed = copy.deepcopy(old)
    slowed["quick"] = True  # CI compares its quick run to the baseline
    for bid in ("E1", "E13"):
        for name in slowed["benches"][bid]:
            # what a slower codec inflates (nulls mark benches that did
            # not run on this host, e.g. socket-forbidden real-asyncio)
            if name.endswith("_ms") and slowed["benches"][bid][name] is not None:
                slowed["benches"][bid][name] *= 1.25
    new_path = _write(tmp_path, "BENCH_ci_perf.json", slowed)
    report_path = str(tmp_path / "compare_report.json")
    rc = cli_main([
        "bench", "--compare", BASELINE, new_path,
        "--threshold", "0.10", "--wall-threshold", "0.75",
        "--json", report_path,
    ])
    assert rc == 1
    out = capsys.readouterr().out
    assert "REGRESSED E1.ideal_rpc0_ms" in out
    with open(report_path) as fh:
        report = json.load(fh)
    assert report["status"] == "regression"
    assert "E1.ideal_rpc0_ms" in report["regressions"]


def test_cli_compare_ok_exits_zero_and_json_stdout(capsys):
    rc = cli_main(["bench", "--compare", BASELINE, BASELINE,
                   "--json", "-"])
    assert rc == 0
    report = json.loads(capsys.readouterr().out)
    assert report["schema"] == COMPARE_SCHEMA
    assert report["status"] == "ok"


def test_cli_compare_bad_document_exits_two(tmp_path, capsys):
    bad = _write(tmp_path, "bad.json", {"schema": "nope"})
    rc = cli_main(["bench", "--compare", BASELINE, bad])
    assert rc == 2
    assert "bench --compare" in capsys.readouterr().err


def test_render_report_mentions_thresholds_and_verdict():
    report = compare_files(BASELINE, BASELINE)
    text = render_report(report)
    assert "threshold 10%" in text
    assert "result: OK" in text
