"""benchmarks/check_schema.py is the CI drift gate for every
machine-readable artifact; tier-1 runs it too so a drifted baseline
fails locally before it fails on the runner."""

import json
import os
import subprocess
import sys

import pytest

ROOT = os.path.dirname(os.path.dirname(os.path.dirname(
    os.path.abspath(__file__))))
SCRIPT = os.path.join(ROOT, "benchmarks", "check_schema.py")


def _run(cwd=ROOT):
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(ROOT, "src")
    return subprocess.run(
        [sys.executable, SCRIPT], cwd=cwd, env=env,
        capture_output=True, text=True,
    )


def test_checked_in_artifacts_pass():
    proc = _run()
    assert proc.returncode == 0, proc.stderr
    assert "check_schema: ok" in proc.stdout


@pytest.mark.parametrize("mutation, fragment", [
    (lambda d: d.__setitem__("schema_version", 1), "schema_version"),
    (lambda d: d["benches"]["E14"].pop("soda_faulted_goodput_per_s"),
     "E14 metrics drifted"),
    (lambda d: d["benches"]["E1"].__setitem__("rogue_metric", 1.0),
     "E1 metrics drifted"),
])
def test_drifted_baseline_fails(tmp_path, mutation, fragment):
    """A stale or hand-edited BENCH_*.json must be rejected."""
    with open(os.path.join(ROOT, "BENCH_PR1.json")) as fh:
        doc = json.load(fh)
    mutation(doc)
    root = tmp_path
    (root / "benchmarks").mkdir()
    out = root / "benchmarks" / "out"
    out.mkdir()
    # one valid table so only the bench baseline is at fault
    (out / "t.json").write_text(json.dumps({
        "schema": "repro.table", "schema_version": 1, "name": "t",
        "columns": ["a"], "rows": [[1]],
    }))
    (root / "BENCH_PR1.json").write_text(json.dumps(doc))
    import shutil
    shutil.copy(SCRIPT, root / "benchmarks" / "check_schema.py")
    (root / "tests" / "obs").mkdir(parents=True)
    shutil.copy(os.path.join(ROOT, "tests", "obs",
                             "golden_bench_schema.json"),
                root / "tests" / "obs" / "golden_bench_schema.json")
    env = dict(os.environ)
    env["PYTHONPATH"] = os.path.join(ROOT, "src")
    proc = subprocess.run(
        [sys.executable, str(root / "benchmarks" / "check_schema.py")],
        cwd=root, env=env, capture_output=True, text=True,
    )
    assert proc.returncode == 1
    assert fragment in proc.stderr
