"""StreamingHistogram: accuracy bound, merge fidelity, geometry."""

import math

import pytest

from repro.obs.hist import StreamingHistogram
from repro.sim.rng import SimRandom


def _exact_pct(xs, p):
    xs = sorted(xs)
    rank = (p / 100.0) * (len(xs) - 1)
    lo, hi = int(math.floor(rank)), int(math.ceil(rank))
    if lo == hi:
        return xs[lo]
    frac = rank - lo
    return xs[lo] * (1 - frac) + xs[hi] * frac


def test_empty_histogram_is_nan():
    h = StreamingHistogram()
    assert math.isnan(h.percentile(50))
    assert math.isnan(h.mean)
    assert math.isnan(h.minimum)
    assert len(h) == 0


def test_single_sample_is_exact_everywhere():
    h = StreamingHistogram()
    h.record(3.25)
    for p in (0, 1, 50, 99, 100):
        assert h.percentile(p) == 3.25
    assert h.mean == 3.25
    assert h.minimum == h.maximum == 3.25


def test_endpoints_are_exact():
    h = StreamingHistogram()
    for v in (1.0, 2.0, 3.0, 4.0):
        h.record(v)
    assert h.percentile(0) == 1.0
    assert h.percentile(100) == 4.0


def test_percentile_error_is_bounded_by_construction():
    rng = SimRandom(7, "test/hist")
    xs = [math.exp(rng.uniform(0.0, 10.0)) for _ in range(20_000)]
    h = StreamingHistogram()
    for v in xs:
        h.record(v)
    bound = h.relative_error  # sqrt(growth) - 1, < 1%
    assert bound < 0.01
    for p in (10, 25, 50, 75, 90, 99, 99.9):
        truth = _exact_pct(xs, p)
        assert abs(h.percentile(p) - truth) / truth <= bound + 1e-12


def test_memory_is_o_buckets_not_o_samples():
    rng = SimRandom(1, "test/hist-mem")
    h = StreamingHistogram()
    for _ in range(50_000):
        h.record(math.exp(rng.uniform(0.0, 8.0)))
    # ~2% geometric buckets over e^0..e^8 is a few hundred buckets
    assert h.bucket_count < 500
    assert h.count == 50_000


def test_negative_and_zero_values():
    h = StreamingHistogram()
    for v in (-5.0, -1.0, 0.0, 1.0, 5.0):
        h.record(v)
    assert h.percentile(0) == -5.0
    assert h.percentile(100) == 5.0
    assert h.mean == 0.0
    assert h.percentile(50) == pytest.approx(0.0, abs=1e-6)


def test_merge_is_bit_identical_to_single_stream():
    rng = SimRandom(3, "test/hist-merge")
    xs = [math.exp(rng.uniform(0.0, 6.0)) for _ in range(5_000)]
    single = StreamingHistogram()
    shards = [StreamingHistogram() for _ in range(4)]
    for i, v in enumerate(xs):
        single.record(v)
        shards[i % 4].record(v)
    merged = shards[0]
    for sh in shards[1:]:
        merged.merge(sh)
    assert merged.count == single.count
    assert merged.buckets == single.buckets
    for p in (0.0, 1.0, 25.0, 50.0, 75.0, 99.0, 99.9, 100.0):
        assert merged.percentile(p) == single.percentile(p)


def test_merge_rejects_mismatched_geometry():
    a = StreamingHistogram(growth=1.02)
    b = StreamingHistogram(growth=1.05)
    with pytest.raises(ValueError):
        a.merge(b)


def test_bad_geometry_rejected():
    with pytest.raises(ValueError):
        StreamingHistogram(growth=1.0)
    with pytest.raises(ValueError):
        StreamingHistogram(base=0.0)


def test_bucket_bounds_cover_every_sample():
    h = StreamingHistogram()
    xs = [0.5, 1.0, 2.5, 100.0]
    for v in xs:
        h.record(v)
    bounds = h.bucket_bounds()
    assert sum(n for _, n in bounds) == len(xs)
    # upper bounds are strictly increasing (the cumulative-le order)
    uppers = [u for u, _ in bounds]
    assert uppers == sorted(uppers)
    for v in xs:
        assert any(v < u for u in uppers)


def test_weighted_record():
    h = StreamingHistogram()
    h.record(2.0, n=10)
    assert h.count == 10
    assert h.total == 20.0
    assert h.percentile(50) == 2.0
