"""TimeSeries: windowing on simulated time, eviction, MetricSet wiring."""

import math

import pytest

from repro.obs.timeseries import TimeSeries, WindowStat
from repro.sim.engine import Engine
from repro.sim.metrics import MetricSet


class _Clock:
    """Minimal engine stand-in: just a settable `.now`."""

    def __init__(self):
        self.now = 0.0


def test_windowing_by_simulated_time():
    clk = _Clock()
    ts = TimeSeries(clk, window_ms=100.0)
    ts.record_count("ops")
    clk.now = 99.9
    ts.record_count("ops")
    clk.now = 100.0
    ts.record_count("ops")
    assert ts.windows() == [0, 1]
    assert ts.value(0, "ops") == 2.0
    assert ts.value(1, "ops") == 1.0
    assert ts.window_span(1) == (100.0, 200.0)
    assert ts.rate_per_sec(0, "ops") == 20.0


def test_latency_stats_per_window():
    clk = _Clock()
    ts = TimeSeries(clk, window_ms=50.0)
    for v in (1.0, 3.0):
        ts.record_latency("rtt", v)
    clk.now = 60.0
    ts.record_latency("rtt", 10.0)
    s0 = ts.get(0, "rtt")
    assert s0.count == 2.0 and s0.mean == 2.0
    assert s0.minimum == 1.0 and s0.maximum == 3.0
    assert ts.get(1, "rtt").total == 10.0
    assert ts.get(2, "rtt") is None
    assert ts.value(2, "rtt") == 0.0


def test_retention_evicts_oldest_windows():
    clk = _Clock()
    ts = TimeSeries(clk, window_ms=10.0, retain=3)
    for i in range(6):
        clk.now = i * 10.0
        ts.record_count("x")
    assert len(ts) == 3
    assert ts.windows() == [3, 4, 5]


def test_series_and_names():
    clk = _Clock()
    ts = TimeSeries(clk, window_ms=10.0)
    ts.record_count("a")
    clk.now = 25.0
    ts.record_count("b")
    assert ts.names() == ["a", "b"]
    assert [w for w, _ in ts.series("a")] == [0]
    assert [w for w, _ in ts.series("b")] == [2]


def test_snapshot_shape():
    clk = _Clock()
    ts = TimeSeries(clk, window_ms=100.0)
    ts.record_latency("rtt", 2.0)
    snap = ts.snapshot()
    assert snap == {
        "0": {"rtt": {"count": 1.0, "sum": 2.0, "min": 2.0, "max": 2.0}}
    }


def test_empty_windowstat_summary_is_nullable():
    s = WindowStat()
    assert s.summary() == {"count": 0.0, "sum": 0.0, "min": None, "max": None}
    assert math.isnan(s.mean)


def test_bad_window_rejected():
    with pytest.raises(ValueError):
        TimeSeries(_Clock(), window_ms=0.0)


def test_metricset_binding_routes_counts_and_latencies():
    clk = _Clock()
    ts = TimeSeries(clk, window_ms=100.0)
    m = MetricSet()
    pre = m.latency("early")  # recorder created before binding
    m.bind_timeseries(ts)
    m.count("ops", 2)
    pre.record(5.0)          # rebound sink must forward
    m.latency("late").record(7.0)
    assert ts.value(0, "ops") == 2.0
    assert ts.get(0, "early").total == 5.0
    assert ts.get(0, "late").total == 7.0
    # cumulative metrics are unaffected by the forwarding
    assert m.get("ops") == 2.0
    assert pre.count == 1
    # detaching stops the forwarding
    m.bind_timeseries(None)
    m.count("ops", 1)
    pre.record(1.0)
    assert ts.value(0, "ops") == 2.0
    assert ts.get(0, "early").count == 1.0


def test_windowstat_merge_is_exact():
    a, b = WindowStat(), WindowStat()
    for v in (1.0, 3.0):
        a.add(v)
    b.add(10.0)
    a.merge(b)
    assert a.count == 3.0 and a.total == 14.0
    assert a.minimum == 1.0 and a.maximum == 10.0
    # merging an empty aggregate changes nothing
    a.merge(WindowStat())
    assert a.summary() == {"count": 3.0, "sum": 14.0, "min": 1.0,
                           "max": 10.0}


def test_merge_folds_aligned_and_missing_windows():
    clk_a, clk_b = _Clock(), _Clock()
    a = TimeSeries(clk_a, window_ms=10.0)
    b = TimeSeries(clk_b, window_ms=10.0)
    a.record_count("ops", 2)
    clk_b.now = 5.0
    b.record_count("ops", 3)        # aligned: window 0 merges
    clk_b.now = 25.0
    b.record_latency("rtt", 4.0)    # missing in a: window 2 copies over
    a.merge(b)
    assert a.value(0, "ops") == 5.0
    assert a.get(2, "rtt").total == 4.0
    assert a.windows() == [0, 2]
    # the source series is untouched
    assert b.value(0, "ops") == 3.0


def test_merge_rejects_mismatched_window_widths():
    a = TimeSeries(_Clock(), window_ms=10.0)
    b = TimeSeries(_Clock(), window_ms=20.0)
    with pytest.raises(ValueError):
        a.merge(b)


def test_merged_classmethod_combines_per_shard_series():
    """The `repro top --scenario scale` path: one series per shard,
    merged into a fresh chronological series for rendering."""
    shards = []
    for offset in (0.0, 15.0, 31.0):
        clk = _Clock()
        ts = TimeSeries(clk, window_ms=10.0)
        clk.now = offset
        ts.record_count("ops")
        ts.record_latency("rtt", offset + 1.0)
        shards.append(ts)
    merged = TimeSeries.merged(shards)
    assert merged is not None
    assert merged.windows() == [0, 1, 3]
    assert sum(merged.value(w, "ops") for w in merged.windows()) == 3.0
    assert merged.get(3, "rtt").maximum == 32.0
    assert TimeSeries.merged([]) is None


def test_cluster_install_timeseries_windows_a_real_run():
    from repro.core.api import BYTES, Operation, Proc, make_cluster

    cluster = make_cluster("ideal", seed=0)
    ts = cluster.install_timeseries(window_ms=5.0)
    assert cluster.timeseries is ts

    ECHO = Operation("echo", (BYTES,), (BYTES,))

    class Server(Proc):
        def main(self, ctx):
            (end,) = ctx.initial_links
            yield from ctx.register(ECHO)
            yield from ctx.open(end)
            for _ in range(20):
                inc = yield from ctx.wait_request()
                yield from ctx.reply(inc, (inc.args[0],))

    class Client(Proc):
        def main(self, ctx):
            (end,) = ctx.initial_links
            for _ in range(20):
                yield from ctx.connect(end, ECHO, (b"x",))
                yield from ctx.delay(2.0)

    s = cluster.spawn(Server(), "server")
    c = cluster.spawn(Client(), "client")
    cluster.create_link(s, c)
    cluster.run_until_quiet(max_ms=1e6)
    # the runtime's own rpc.roundtrip recorder feeds the series
    rtt_windows = ts.series("rpc.roundtrip")
    assert len(rtt_windows) >= 2
    assert sum(stat.count for _, stat in rtt_windows) \
        == cluster.metrics.latency("rpc.roundtrip").count == 20
