"""Prometheus text rendering of MetricSet."""

from repro.obs import prometheus_text
from repro.obs.prom import sanitize_name
from repro.sim.metrics import MetricSet


def test_sanitize_name():
    assert sanitize_name("kernel.calls.Send") == "kernel_calls_Send"
    assert sanitize_name("wire.frames.soda-request") == "wire_frames_soda_request"
    assert sanitize_name("9lives") == "_9lives"


def test_counters_render_with_type_lines():
    m = MetricSet()
    m.count("kernel.calls.Send", 3)
    m.count("wire.bytes", 2048)
    text = prometheus_text(m)
    assert "# TYPE repro_kernel_calls_Send counter" in text
    assert "repro_kernel_calls_Send 3" in text
    assert "repro_wire_bytes 2048" in text
    assert text.endswith("\n")


def test_latencies_render_as_summaries():
    m = MetricSet()
    for v in (1.0, 2.0, 3.0, 4.0):
        m.latency("rpc.roundtrip").record(v)
    text = prometheus_text(m)
    assert "# TYPE repro_rpc_roundtrip_ms summary" in text
    assert 'repro_rpc_roundtrip_ms{quantile="0.5"} 2.5' in text
    assert 'repro_rpc_roundtrip_ms{quantile="0.99"}' in text
    assert "repro_rpc_roundtrip_ms_sum 10" in text
    assert "repro_rpc_roundtrip_ms_count 4" in text


def test_custom_namespace():
    m = MetricSet()
    m.count("a.b")
    assert "lynx_a_b 1" in prometheus_text(m, namespace="lynx")


def test_every_line_is_sample_or_comment():
    m = MetricSet()
    m.count("kernel.calls.Send", 3)
    m.count("wire.frames.soda-request")
    m.latency("rpc.roundtrip").record(1.5)
    for line in prometheus_text(m).strip().splitlines():
        assert line.startswith("# TYPE ") or " " in line
        if not line.startswith("#"):
            name = line.split("{")[0].split(" ")[0]
            assert name.startswith("repro_")
