"""Prometheus text rendering of MetricSet."""

from repro.obs import prometheus_text
from repro.obs.prom import sanitize_name
from repro.sim.metrics import MetricSet


def test_sanitize_name():
    assert sanitize_name("kernel.calls.Send") == "kernel_calls_Send"
    assert sanitize_name("wire.frames.soda-request") == "wire_frames_soda_request"
    assert sanitize_name("9lives") == "_9lives"


def test_counters_render_with_type_lines():
    m = MetricSet()
    m.count("kernel.calls.Send", 3)
    m.count("wire.bytes", 2048)
    text = prometheus_text(m)
    assert "# TYPE repro_kernel_calls_Send counter" in text
    assert "repro_kernel_calls_Send 3" in text
    assert "repro_wire_bytes 2048" in text
    assert text.endswith("\n")


def test_latencies_render_as_summaries():
    m = MetricSet()
    for v in (1.0, 2.0, 3.0, 4.0):
        m.latency("rpc.roundtrip").record(v)
    text = prometheus_text(m)
    assert "# TYPE repro_rpc_roundtrip_ms summary" in text
    assert 'repro_rpc_roundtrip_ms{quantile="0.5"}' in text
    assert 'repro_rpc_roundtrip_ms{quantile="0.99"}' in text
    assert "repro_rpc_roundtrip_ms_sum 10" in text
    assert "repro_rpc_roundtrip_ms_count 4" in text


def test_custom_namespace():
    m = MetricSet()
    m.count("a.b")
    assert "lynx_a_b 1" in prometheus_text(m, namespace="lynx")


def test_every_line_is_sample_or_comment():
    m = MetricSet()
    m.count("kernel.calls.Send", 3)
    m.count("wire.frames.soda-request")
    m.latency("rpc.roundtrip").record(1.5)
    for line in prometheus_text(m).strip().splitlines():
        assert line.startswith("# TYPE ") or " " in line
        if not line.startswith("#"):
            name = line.split("{")[0].split(" ")[0]
            assert name.startswith("repro_")


def test_large_counters_keep_full_precision():
    m = MetricSet()
    m.count("wire.bytes", 1234567)
    m.count("wire.frames", 10**15 + 1)
    text = prometheus_text(m)
    assert "repro_wire_bytes 1234567" in text
    assert "1.23457e" not in text
    # beyond 2^53-ish integral floats fall back to repr, still lossless
    assert f"repro_wire_frames {float(10**15 + 1)!r}" in text


def test_nonfinite_values_use_prometheus_spelling():
    m = MetricSet()
    m.count("weird.nan", float("nan"))
    m.count("weird.inf", float("inf"))
    text = prometheus_text(m)
    assert "repro_weird_nan NaN" in text
    assert "repro_weird_inf +Inf" in text


def test_empty_recorder_renders_nan_quantiles():
    m = MetricSet()
    m.latency("rpc.roundtrip")  # registered, never recorded into
    text = prometheus_text(m)
    assert 'repro_rpc_roundtrip_ms{quantile="0.5"} NaN' in text
    assert "repro_rpc_roundtrip_ms_sum 0" in text
    assert "repro_rpc_roundtrip_ms_count 0" in text
    # the histogram family still closes with an +Inf bucket of zero
    assert 'repro_rpc_roundtrip_ms_hist_bucket{le="+Inf"} 0' in text


def test_leading_digit_and_unicode_names_are_sanitised():
    m = MetricSet()
    m.count("9lives", 1)
    m.count("früh.stück", 2)
    text = prometheus_text(m)
    assert "repro__9lives 1" in text
    assert "repro_fr_h_st_ck 2" in text


def test_sanitised_collisions_get_name_labels_and_one_type_line():
    m = MetricSet()
    m.count("a.b", 1)
    m.count("a_b", 2)
    text = prometheus_text(m)
    assert text.count("# TYPE repro_a_b counter") == 1
    assert 'repro_a_b{name="a.b"} 1' in text
    assert 'repro_a_b{name="a_b"} 2' in text
    # no unlabelled duplicate sample
    assert "\nrepro_a_b 1" not in text


def test_label_values_are_escaped():
    from repro.obs.prom import escape_label_value

    assert escape_label_value('sl\\ash"quote\nnl') == 'sl\\\\ash\\"quote\\nnl'


def _parse_exposition(text):
    """A minimal text-format 0.0.4 parser: returns {metric: type} and
    [(name, labels-dict, value-string)] samples, while enforcing the
    line grammar."""
    import re

    types = {}
    samples = []
    for line in text.strip().splitlines():
        if line.startswith("# TYPE "):
            _, _, metric, kind = line.split(" ")
            assert metric not in types, f"duplicate TYPE for {metric}"
            types[metric] = kind
            continue
        m = re.fullmatch(
            r'([a-zA-Z_:][a-zA-Z0-9_:]*)(\{([^}]*)\})? (\S+)', line)
        assert m, f"unparsable exposition line: {line!r}"
        labels = {}
        if m.group(3):
            for part in re.findall(r'([a-zA-Z_]+)="((?:[^"\\]|\\.)*)"',
                                   m.group(3)):
                labels[part[0]] = part[1]
        samples.append((m.group(1), labels, m.group(4)))
    return types, samples


def test_histogram_exposition_round_trips_through_a_parser():
    m = MetricSet()
    rec = m.latency("rpc.roundtrip")
    for v in (1.0, 2.0, 4.0, 8.0, 16.0):
        rec.record(v)
    types, samples = _parse_exposition(prometheus_text(m))
    assert types["repro_rpc_roundtrip_ms_hist"] == "histogram"
    buckets = [(lbl["le"], val) for name, lbl, val in samples
               if name == "repro_rpc_roundtrip_ms_hist_bucket"]
    assert buckets[-1][0] == "+Inf"
    assert buckets[-1][1] == "5"
    # cumulative counts are monotone and end at the total count
    counts = [int(v) for _, v in buckets]
    assert counts == sorted(counts)
    # the cumulative count at each le bound matches the raw samples
    raw = [1.0, 2.0, 4.0, 8.0, 16.0]
    for le, cum in buckets[:-1]:
        assert int(cum) == sum(1 for v in raw if v < float(le) * 1.0000001)
    sums = [v for name, _, v in samples
            if name == "repro_rpc_roundtrip_ms_hist_sum"]
    assert sums == ["31"]
