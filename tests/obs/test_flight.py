"""FlightRecorder: ring bounds, triggers, dump schema, round-trip."""

import json

import pytest

from repro.core.api import make_cluster
from repro.obs.flight import (
    FLIGHT_SCHEMA,
    FLIGHT_SCHEMA_VERSION,
    TRIGGER_EVENTS,
    FlightRecorder,
    describe_flight_dump,
    load_flight_dump,
)
from repro.sim.engine import Engine
from repro.sim.metrics import MetricSet
from repro.sim.trace import TraceLog


def _log():
    engine = Engine()
    return engine, TraceLog(engine)


def test_ring_is_bounded(tmp_path):
    engine, trace = _log()
    fr = FlightRecorder(trace, tmp_path, capacity=8)
    for i in range(50):
        trace.emit("a", "tick", i=i)
    assert len(fr.ring) == 8
    assert fr.ring[0].detail["i"] == 42


def test_trigger_event_dumps_automatically(tmp_path):
    engine, trace = _log()
    metrics = MetricSet()
    fr = FlightRecorder(trace, tmp_path, metrics=metrics, engine=engine,
                        kind="ideal", seed=3)
    trace.emit("a", "tick")
    trace.emit("faults", "partition-entered", window=0)
    assert len(fr.dumps) == 1
    assert fr.dumps[0].name == "flight-000-partition-entered.jsonl"
    assert metrics.get("obs.flight_dumps") == 1
    header, snap, events = load_flight_dump(fr.dumps[0])
    assert header["schema"] == FLIGHT_SCHEMA
    assert header["version"] == FLIGHT_SCHEMA_VERSION
    assert header["reason"] == "partition-entered"
    assert header["kind"] == "ideal" and header["seed"] == 3
    assert [ev.event for ev in events] == ["tick", "partition-entered"]
    assert "counters" in snap


def test_max_dumps_caps_a_crash_storm(tmp_path):
    engine, trace = _log()
    fr = FlightRecorder(trace, tmp_path, max_dumps=2)
    for _ in range(10):
        trace.emit("proc", "crash", mode="kill")
    assert len(fr.dumps) == 2
    assert len(list(tmp_path.glob("*.jsonl"))) == 2


def test_every_trigger_event_is_a_trigger(tmp_path):
    for trigger in TRIGGER_EVENTS:
        engine, trace = _log()
        fr = FlightRecorder(trace, tmp_path / trigger)
        trace.emit("x", trigger)
        assert len(fr.dumps) == 1, trigger


def test_close_detaches(tmp_path):
    engine, trace = _log()
    fr = FlightRecorder(trace, tmp_path)
    fr.close()
    fr.close()  # idempotent
    trace.emit("x", "crash")
    assert fr.dumps == []


def test_manual_dump_and_describe(tmp_path):
    engine, trace = _log()
    metrics = MetricSet()
    metrics.count("faults.dropped", 3)
    metrics.latency("rpc.roundtrip").record(2.5)
    fr = FlightRecorder(trace, tmp_path, metrics=metrics, engine=engine,
                        kind="soda", seed=0)
    trace.emit("client", "send", link=1)
    path = fr.dump()
    text = describe_flight_dump(path)
    assert "reason   manual" in text
    assert "kernel soda" in text
    assert "faults.dropped" in text
    assert "rpc.roundtrip" in text
    assert "send" in text


def test_load_rejects_foreign_files(tmp_path):
    p = tmp_path / "x.jsonl"
    p.write_text(json.dumps({"schema": "other", "version": 1}) + "\n")
    with pytest.raises(ValueError):
        load_flight_dump(p)
    p.write_text(json.dumps(
        {"schema": FLIGHT_SCHEMA, "version": 99}) + "\n")
    with pytest.raises(ValueError):
        load_flight_dump(p)
    p.write_text("")
    with pytest.raises(ValueError):
        load_flight_dump(p)


def test_cluster_crash_triggers_installed_recorder(tmp_path):
    from repro.core.api import Proc

    class Sleeper(Proc):
        def main(self, ctx):
            yield from ctx.delay(1000.0)

    cluster = make_cluster("ideal", seed=1)
    fr = cluster.install_flight_recorder(tmp_path)
    h = cluster.spawn(Sleeper(), "victim")
    cluster.engine.run(until=1.0)
    cluster.crash_process("victim")
    assert len(fr.dumps) == 1
    header, _, events = load_flight_dump(fr.dumps[0])
    assert header["reason"] == "crash"
    assert header["kind"] == "ideal"
    assert events[-1].event == "crash"
    assert events[-1].actor == "victim"


def test_same_seed_dumps_are_identical(tmp_path):
    def one(sub):
        engine = Engine()
        trace = TraceLog(engine)
        fr = FlightRecorder(trace, tmp_path / sub, seed=0, kind="t")
        for i in range(5):
            trace.emit("a", "tick", i=i)
        trace.emit("a", "crash")
        return fr.dumps[0].read_text()

    assert one("a") == one("b")
