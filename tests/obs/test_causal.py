"""Causal span tracing: span-tree structure on all three kernels,
critical-path coverage, exporter validity, and consistency of the
attribution totals with the BENCH_PR1.json latency baseline."""

import json
import os

import pytest

from repro.obs.causal import (
    GAP_LAYER,
    LAYERS,
    CausalGraph,
    Span,
    SpanContext,
    SpanTracker,
    chrome_trace,
    chrome_trace_json,
    waterfall,
)
from repro.sim.engine import Engine
from repro.sim.trace import TraceLog
from repro.workloads.rpc import run_rpc_workload

KINDS = ("charlotte", "soda", "chrysalis")
ROOT = os.path.join(os.path.dirname(__file__), os.pardir, os.pardir)
BASELINE = os.path.join(ROOT, "BENCH_PR7.json")


# ----------------------------------------------------------------------
# unit: the tracker and the graph on a hand-built trace
# ----------------------------------------------------------------------
def _hand_built_graph():
    eng = Engine()
    log = TraceLog(eng)
    spans = SpanTracker(log)
    root = spans.new_trace()
    spans.emit(root, "runtime", "marshal", "a", 0.0, 1.0)
    k = spans.emit(root, "kernel", "transfer", "a", 1.0, 5.0)
    spans.emit(k, "network", "ring", "ring", 4.0, 5.0)
    spans.emit(root, "runtime", "unmarshal", "b", 5.0, 6.0)
    spans.emit_root(root, "connect:op", "a", 0.0, 8.0)
    return CausalGraph.from_trace(log)


def test_tracker_mints_distinct_ids():
    spans = SpanTracker(TraceLog(Engine()))
    a, b = spans.new_trace(), spans.new_trace()
    assert a.trace_id != b.trace_id
    assert a.span_id != b.span_id
    assert a.parent_id is None
    child = spans.child(a)
    assert child.trace_id == a.trace_id
    assert child.parent_id == a.span_id


def test_hand_built_tree_and_depths():
    g = _hand_built_graph()
    (tid,) = g.traces()
    assert g.is_tree(tid)
    assert not g.orphans(tid)
    root = g.root(tid)
    assert root.layer == "rpc" and root.duration == 8.0
    depths = {s.name: g.depth(s) for s in g.by_trace[tid]}
    assert depths == {"connect:op": 0, "marshal": 1, "transfer": 1,
                      "ring": 2, "unmarshal": 1}


def test_hand_built_critical_path_tiles_root():
    g = _hand_built_graph()
    (tid,) = g.traces()
    segs = g.critical_path(tid)
    assert segs[0].t0 == 0.0 and segs[-1].t1 == 8.0
    for a, b in zip(segs, segs[1:]):
        assert a.t1 == b.t0  # contiguous tiling, no gaps or overlaps
    # the nested network span wins over its kernel parent at [4, 5]
    at4 = next(s for s in segs if s.t0 <= 4.0 < s.t1)
    assert at4.layer == "network"
    # the uncovered tail [6, 8] is attributed to the runtime gap layer
    assert segs[-1].layer == GAP_LAYER and segs[-1].name == "dispatch"
    assert sum(s.duration for s in segs) == pytest.approx(8.0)
    assert g.by_layer([tid])[GAP_LAYER] >= 2.0


def test_happens_before_includes_tree_and_temporal_edges():
    g = _hand_built_graph()
    (tid,) = g.traces()
    edges = set(g.happens_before(tid))
    by_name = {s.name: s.span_id for s in g.by_trace[tid]}
    assert (by_name["connect:op"], by_name["marshal"]) in edges
    assert (by_name["transfer"], by_name["ring"]) in edges
    assert (by_name["marshal"], by_name["transfer"]) in edges  # temporal


def test_orphans_and_non_trees_detected():
    g = CausalGraph([
        Span(1, 1, None, "rpc", "r", "a", 0.0, 1.0),
        Span(1, 9, 99, "kernel", "k", "a", 0.0, 0.5),  # parent unknown
    ])
    assert g.orphans(1) and not g.is_tree(1)
    assert not CausalGraph([]).is_tree(1)  # no root at all


# ----------------------------------------------------------------------
# integration: every RPC on every kernel yields a rooted, acyclic tree
# ----------------------------------------------------------------------
@pytest.fixture(scope="module", params=KINDS)
def traced_run(request):
    r = run_rpc_workload(request.param, 64, count=3, seed=0)
    return request.param, r, CausalGraph.from_trace(r.trace)


def test_every_rpc_yields_a_rooted_acyclic_span_tree(traced_run):
    kind, r, graph = traced_run
    tids = graph.traces()
    assert len(tids) == 4  # 3 measured + 1 warm-up connect
    for tid in tids:
        assert graph.is_tree(tid), f"{kind}: trace {tid} not a tree"
        assert not graph.orphans(tid)
        root = graph.root(tid)
        assert root.layer == "rpc" and root.name == "connect:ping"
        for s in graph.by_trace[tid]:
            assert s.layer in LAYERS
            assert s.t1 >= s.t0


def test_all_layers_represented_and_coverage_exact(traced_run):
    kind, r, graph = traced_run
    layers_seen = {s.layer for s in graph.spans}
    assert {"rpc", "runtime", "kernel", "network"} <= layers_seen
    for tid in graph.traces():
        root = graph.root(tid)
        covered = sum(s.duration for s in graph.critical_path(tid))
        assert covered == pytest.approx(root.duration, abs=1e-9)


def test_root_durations_match_measured_rtts(traced_run):
    """The root span *is* the measurement: its duration equals the
    client-observed round-trip time of the same (non-warm-up) RPC."""
    kind, r, graph = traced_run
    measured = [graph.root(tid).duration for tid in graph.traces()[1:]]
    assert measured == pytest.approx(r.rtts)


def test_spans_survive_jsonl_round_trip(traced_run):
    kind, r, graph = traced_run
    replayed = TraceLog.from_jsonl(r.trace.to_jsonl())
    g2 = CausalGraph.from_trace(replayed)
    assert g2.spans == graph.spans
    assert g2.by_layer() == graph.by_layer()


def test_migration_workload_spans_are_trees():
    from repro.workloads.migration import run_migration_churn

    d = run_migration_churn("soda", members=3, hops=4, seed=0,
                            linger_ms=500.0)
    assert d["finished"]
    graph = CausalGraph.from_trace(d["trace"])
    tids = graph.traces()
    assert len(tids) >= d["rpcs_served"] > 0
    for tid in tids:
        assert graph.is_tree(tid)
        assert not graph.orphans(tid)


def test_raw_kernel_workload_is_unspanned():
    """E1's raw-kernel baseline bypasses the runtime, so nothing mints
    a trace — the causal layer must not invent spans for it."""
    from repro.workloads.rpc import raw_charlotte_rpc

    r = raw_charlotte_rpc(0, count=2, seed=0)
    assert CausalGraph.from_trace(r.trace).traces() == []


# ----------------------------------------------------------------------
# exporters
# ----------------------------------------------------------------------
def test_chrome_export_of_three_rpc_run_validates():
    r = run_rpc_workload("charlotte", 0, count=3, seed=0)
    graph = CausalGraph.from_trace(r.trace)
    doc = json.loads(chrome_trace_json(graph))  # strict JSON
    assert set(doc) == {"traceEvents", "displayTimeUnit"}
    events = doc["traceEvents"]
    xs = [e for e in events if e["ph"] == "X"]
    metas = [e for e in events if e["ph"] == "M"]
    assert len(xs) == len(graph.spans)
    assert {e["name"] for e in metas} == {"process_name", "thread_name"}
    assert {e["pid"] for e in xs} == set(graph.traces())
    for e in xs:
        assert e["dur"] >= 0 and e["ts"] >= 0  # microseconds
        assert e["cat"] in LAYERS
        assert set(e["args"]) == {"span_id", "parent_id", "layer", "host"}
    # µs conversion: the root X event is 1000x the root span's ms
    tid = graph.traces()[0]
    root = graph.root(tid)
    root_x = next(e for e in xs
                  if e["pid"] == tid and e["args"]["parent_id"] is None)
    assert root_x["dur"] == pytest.approx(root.duration * 1000.0)


def test_chrome_export_subset_of_traces():
    r = run_rpc_workload("chrysalis", 0, count=2, seed=0)
    graph = CausalGraph.from_trace(r.trace)
    last = graph.traces()[-1]
    doc = chrome_trace(graph, trace_ids=[last])
    assert {e["pid"] for e in doc["traceEvents"]} == {last}


def test_waterfall_renders_every_span():
    r = run_rpc_workload("soda", 0, count=1, seed=0)
    graph = CausalGraph.from_trace(r.trace)
    tid = graph.traces()[-1]
    text = waterfall(graph, tid)
    assert f"trace {tid}" in text.splitlines()[0]
    assert len(text.splitlines()) == 1 + len(graph.by_trace[tid])
    for layer in ("rpc:", "runtime:", "kernel:", "network:"):
        assert layer in text
    assert "█" in text
    assert waterfall(graph, 10**9).startswith("(trace")  # missing trace


# ----------------------------------------------------------------------
# consistency with the benchmark baseline (the 5 % acceptance bound)
# ----------------------------------------------------------------------
def _baseline():
    with open(BASELINE) as fh:
        return json.load(fh)["benches"]


def _per_rpc_total(kind, count):
    r = run_rpc_workload(kind, 0, count=count, seed=0)
    graph = CausalGraph.from_trace(r.trace)
    tids = graph.traces()[1:]  # drop the warm-up
    assert len(tids) == count
    return graph.total_ms(tids) / count


def test_attribution_total_matches_e1_charlotte_latency():
    base = _baseline()["E1"]["lynx_rpc0_ms"]
    assert _per_rpc_total("charlotte", 5) == pytest.approx(base, rel=0.05)


def test_attribution_total_matches_e4_soda_latency():
    base = _baseline()["E4"]["soda_rpc0_ms"]
    assert _per_rpc_total("soda", 3) == pytest.approx(base, rel=0.05)


def test_attribution_total_matches_e5_chrysalis_latency():
    base = _baseline()["E5"]["lynx_rpc0_ms"]
    assert _per_rpc_total("chrysalis", 5) == pytest.approx(base, rel=0.05)


def test_e13_charlotte_runtime_layer_cost_is_strictly_highest():
    """The PR's headline machine-checked claim (figure 2, §6): at full
    counts Charlotte's high-level primitives force strictly more
    runtime-layer critical-path milliseconds per RPC than SODA's or
    Chrysalis's low-level primitives do."""
    from repro.obs.bench import bench_e13

    e13 = bench_e13(seed=0, quick=False)
    assert e13["charlotte_runtime_ms"] > e13["soda_runtime_ms"]
    assert e13["charlotte_runtime_ms"] > e13["chrysalis_runtime_ms"]
    for kind in KINDS:
        parts = sum(e13[f"{kind}_{layer}_ms"]
                    for layer in ("runtime", "kernel", "network", "app"))
        assert parts == pytest.approx(e13[f"{kind}_total_ms"])
        assert 0.0 < e13[f"{kind}_runtime_share"] < 1.0
