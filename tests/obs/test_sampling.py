"""Head-based deterministic trace sampling."""

import pytest

from repro.obs.sampling import TraceSampler


def test_rate_one_keeps_everything():
    s = TraceSampler(1.0, seed=0)
    assert all(s.sample(t) for t in range(1000))


def test_rate_zero_drops_everything():
    s = TraceSampler(0.0, seed=0)
    assert not any(s.sample(t) for t in range(1000))


def test_rate_is_clamped():
    assert TraceSampler(7.0).rate == 1.0
    assert TraceSampler(-2.0).rate == 0.0


def test_same_seed_samples_identical_trace_ids():
    a = TraceSampler(0.25, seed=42)
    b = TraceSampler(0.25, seed=42)
    ids = range(5000)
    assert [a.sample(t) for t in ids] == [b.sample(t) for t in ids]


def test_different_seeds_sample_differently():
    a = TraceSampler(0.25, seed=1)
    b = TraceSampler(0.25, seed=2)
    ids = range(5000)
    assert [a.sample(t) for t in ids] != [b.sample(t) for t in ids]


def test_observed_rate_tracks_requested_rate():
    for rate in (0.1, 0.5, 0.9):
        s = TraceSampler(rate, seed=3)
        kept = sum(s.sample(t) for t in range(20_000))
        assert kept / 20_000 == pytest.approx(rate, abs=0.02)


def test_decision_is_per_trace_id_not_stateful():
    s = TraceSampler(0.5, seed=9)
    assert [s.sample(17)] * 10 == [s.sample(17) for _ in range(10)]


def test_cluster_sampling_is_deterministic_and_inherited():
    from repro.core.api import make_cluster

    cluster = make_cluster("ideal", seed=5)
    cluster.install_trace_sampling(0.5)
    ctxs = [cluster.spans.new_trace() for _ in range(200)]
    kept = {c.trace_id for c in ctxs if c.sampled}
    # children inherit the head decision
    for c in ctxs[:50]:
        child = cluster.spans.child(c)
        assert child.sampled == c.sampled
        assert child.trace_id == c.trace_id
    # same seed, same decisions
    cluster2 = make_cluster("ideal", seed=5)
    cluster2.install_trace_sampling(0.5)
    ctxs2 = [cluster2.spans.new_trace() for _ in range(200)]
    assert {c.trace_id for c in ctxs2 if c.sampled} == kept
    # the sampled/dropped split is counted
    total = cluster.metrics.get("obs.spans_sampled") \
        + cluster.metrics.get("obs.spans_dropped")
    assert total == 200


def test_trace_ids_advance_regardless_of_sampling():
    """Id assignment must be rate-invariant so changing the sampling
    rate never changes which ids a run hands out."""
    from repro.core.api import make_cluster

    a = make_cluster("ideal", seed=0)
    a.install_trace_sampling(0.0)
    b = make_cluster("ideal", seed=0)
    b.install_trace_sampling(1.0)
    ids_a = [a.spans.new_trace().trace_id for _ in range(50)]
    ids_b = [b.spans.new_trace().trace_id for _ in range(50)]
    assert ids_a == ids_b
