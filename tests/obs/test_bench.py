"""The unified benchmark runner: schema golden file and sanity of the
exported values (quick mode, so the whole module stays tier-1 cheap)."""

import json
import os

import pytest

from repro.core.ports import registered_kernels
from repro.obs.bench import (
    BENCH_IDS,
    BENCH_SCHEMA_VERSION,
    run_benches,
    write_bench_json,
)

GOLDEN = os.path.join(os.path.dirname(__file__), "golden_bench_schema.json")


@pytest.fixture(scope="module")
def quick_results():
    return run_benches(quick=True, seed=0)


def test_bench_ids():
    assert BENCH_IDS == ("E1", "E4", "E5", "E13", "E14", "E15", "E16",
                         "E17", "S1")


def test_document_schema_matches_golden_file(quick_results, tmp_path):
    """Golden-file guard: the BENCH_*.json key structure may only
    change together with this file (and a schema-version bump)."""
    doc, path = write_bench_json(
        quick_results, path=str(tmp_path / "BENCH_test.json"),
        seed=0, quick=True,
    )
    with open(path) as fh:
        loaded = json.load(fh)
    with open(GOLDEN) as fh:
        golden = json.load(fh)
    assert sorted(loaded) == golden["top_level"]
    assert loaded["schema"] == golden["schema"]
    assert loaded["schema_version"] == golden["schema_version"] \
        == BENCH_SCHEMA_VERSION
    assert {k: sorted(v) for k, v in loaded["benches"].items()} \
        == golden["benches"]
    assert loaded == json.loads(json.dumps(doc))  # file == returned doc


def test_exported_values_are_json_numbers(quick_results):
    for bid, metrics in quick_results.items():
        for name, value in metrics.items():
            assert value is None or isinstance(value, (int, float)), \
                f"{bid}.{name} = {value!r}"


def test_quick_values_keep_the_paper_shape(quick_results):
    """Even at smoke counts the simulated quantities reproduce the
    paper's ordering claims (wall-clock S1 values are only positive)."""
    e1, e4, e5, e13, e14, e15, e16, e17, s1 = (
        quick_results[k]
        for k in ("E1", "E4", "E5", "E13", "E14", "E15", "E16", "E17",
                  "S1")
    )
    assert e1["lynx_rpc0_ms"] > e1["raw_rpc0_ms"]          # §3.3 overhead
    assert e1["lynx_rpc1000_ms"] > e1["lynx_rpc0_ms"]
    assert e4["small_msg_speedup"] > 2.0                   # §4.3 "3x"
    assert e4["crossover_bytes"] == 2048                   # quick sweep grid
    assert 0.2 < e5["tuned_improvement_rpc0"] < 0.5        # §5.3 "30-40%"
    assert e5["charlotte_ratio_rpc0"] > 10.0               # order of magnitude
    # figure 2 / §6: Charlotte's high-level primitives cost the most
    # *runtime-layer* critical-path time per RPC, strictly
    assert e13["charlotte_runtime_ms"] > e13["soda_runtime_ms"]
    assert e13["charlotte_runtime_ms"] > e13["chrysalis_runtime_ms"]
    # the ideal backend is the lower bound on every real kernel — in
    # raw latency and in causal critical-path total alike
    assert e1["ideal_rpc0_ms"] < e1["raw_rpc0_ms"]
    assert e1["ideal_rpc1000_ms"] < e1["raw_rpc1000_ms"]
    for kind in ("charlotte", "soda", "chrysalis"):
        assert e13["ideal_total_ms"] < e13[f"{kind}_total_ms"]
    # E14 / §2.2 vs §4.1: every runtime-placement ("hints") backend
    # rides out the partition with strictly higher goodput than the
    # kernel-placement ("absolutes") one, whose tail latency stretches
    # to the partition window instead
    for kind in ("soda", "chrysalis", "ideal"):
        assert e14[f"{kind}_faulted_goodput_per_s"] \
            > e14["charlotte_faulted_goodput_per_s"]
        assert e14[f"{kind}_max_rtt_ms"] < e14["charlotte_max_rtt_ms"]
    assert e14["charlotte_failed_over"] == 0     # absolutes give no signal
    assert e14["charlotte_kernel_retransmits"] > 0
    for kind in registered_kernels():
        # the real-transport backend's entries are None on hosts that
        # forbid sockets — present (and positive) everywhere else
        for value in (e14[f"{kind}_completed"],
                      s1[f"rpc_sim_wall_ms_{kind}"],
                      s1[f"rpc_sim_events_{kind}"]):
            assert value is None or value > 0
    # E15: the telemetry plane's own gates (machine-checked inside the
    # bench; re-assert the deterministic accuracy numbers here)
    for mode in ("off", "sampled", "full"):
        assert e15[f"obs_{mode}_events_per_sec"] > 0.0
    assert e15["sampled_overhead_frac"] < 0.10
    assert e15["hist_max_err_frac"] <= 0.01
    assert e15["hist_merge_bitexact"] == 1.0
    assert 0.0 < e15["sampled_trace_frac"] < 0.5
    assert e15["hist_buckets"] * 100 <= e15["hist_samples"]
    # E16: sharded-engine scaling (digest equality is machine-checked
    # inside the bench — a divergence raises before values come back)
    assert e16["scale_digest_match_s1"] == 1.0
    assert e16["scale_digest_match_s8"] == 1.0
    assert e16["scale_repeat_stable_s8"] == 1.0
    assert e16["scale_events_total"] > 0
    assert e16["scale_rtt_p99_ms"] >= e16["scale_rtt_mean_ms"] > 0.0
    for short in ("global", "serial"):
        for shards in (1, 8):
            assert e16[f"scale_{short}_s{shards}_events_per_sec"] > 0.0
    for shards in (1, 2, 4, 8):
        assert e16[f"scale_parallel_s{shards}_events_per_sec"] > 0.0
    assert e16["scale_parallel_s8_speedup"] > 0.0
    # E17: real transport (the hard gates — exactly-once, failover
    # accounting, the report contract — are machine-checked inside the
    # bench; re-assert the headline claims when the host allows it)
    if e17["net_available"] == 1.0:
        assert e17["net_exactly_once"] == 1.0
        assert e17["net_sim_rtt_ms"] == e17["net_sim_ideal_rtt_ms"]
        assert e17["net_meas_completed"] == e17["net_meas_ops"] > 0
        assert e17["net_meas_duplicates"] >= 1
        assert e17["net_meas_vs_sim_rtt_ratio"] > 0.0
    else:
        assert all(v is None for k, v in e17.items()
                   if k != "net_available")


def test_simulated_metrics_are_seed_deterministic():
    a = run_benches(bench_ids=["E1"], quick=True, seed=3)
    b = run_benches(bench_ids=["E1"], quick=True, seed=3)
    assert a == b


def test_unknown_bench_id_rejected():
    with pytest.raises(ValueError):
        run_benches(bench_ids=["E99"], quick=True)


def test_subset_and_lowercase_ids():
    out = run_benches(bench_ids=["e5"], quick=True)
    assert list(out) == ["E5"]
